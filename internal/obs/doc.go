// Package obs is the repo's zero-dependency observability layer: a
// concurrent-safe metrics registry (counters, gauges, fixed-bucket
// histograms, all with labels) rendered in Prometheus text exposition
// format, a structured event logger built on log/slog with an
// in-memory ring buffer for test assertions, and timing helpers for
// hot paths. A nil *Registry / *EventLog is a valid no-op, so library
// code takes them as plain injectable parameters and pays nothing when
// observability is disabled.
//
// The metric set mirrors the evaluation signals of the Pano paper
// (SIGCOMM 2019), so scraping a running server or simulator reproduces
// the paper's per-session time series:
//
//	pano_sim_chunk_pspnr_db / pano_client_est_pspnr_db
//	    per-chunk viewport PSPNR — the quality axis of Figures 13, 15,
//	    and the estimation-error gap of Figure 16(a).
//	pano_sim_rebuffer_seconds_total / pano_client_rebuffer_seconds_total
//	    stall time, the numerator of the buffering ratio in Figure 12's
//	    QoE comparison and the rebuffering axis of Figure 17.
//	pano_sim_bits_total / pano_client_bytes_total / pano_tile_bytes_total
//	    downloaded volume — the bandwidth-savings axis of Figure 18.
//	pano_sim_session_mos / pano_client_session_mos
//	    the Table 3 opinion-score band of the session's mean PSPNR.
//	pano_abr_decision_seconds
//	    MPC chunk-level decision latency, the §6.1 runtime overhead.
//	pano_abr_bw_prediction_error_ratio
//	    |predicted − actual|/actual throughput, the §8.3 robustness
//	    variable (Figure 17's throughput-error axis).
//	pano_planner_plan_seconds
//	    per-chunk tile-allocation latency (the pruning speedup of
//	    Table 2 shows up here).
//	pano_http_requests_total / pano_http_request_seconds
//	    DASH endpoint load and latency on the §6.2 server.
//	pano_http_write_errors_total
//	    response bodies that failed mid-write (truncated manifests or
//	    tiles) — previously swallowed, now visible per endpoint.
//	pano_client_tile_attempt_seconds / pano_client_tile_retries_total
//	    per-attempt tile latency (failures included) and failed attempts
//	    retried by the resilient fetch pipeline.
//	pano_client_tiles_degraded_total / pano_client_tiles_skipped_total
//	    tiles that fell down the degradation ladder (§7 re-fetch at
//	    lowest quality, then stitch-at-previous-content skip); the
//	    simulator mirrors these as pano_sim_tiles_{degraded,skipped}_total.
//	pano_chaos_requests_total / pano_chaos_injections_total
//	    the fault-injection middleware's traffic and injected faults by
//	    endpoint and kind (error, abort, truncate, stall, latency,
//	    throttle).
//
// The live-streaming subsystem (internal/live publishing into
// internal/store, consumed by the client's live session loop) adds:
//
//	pano_live_published_chunks_total / pano_live_edge_chunk / pano_live_seq
//	    the moving live edge: chunks published, the current edge index,
//	    and the catalog head sequence (monotonic, rotates the ETag).
//	pano_live_deadline_misses_total / pano_live_degraded_publishes_total
//	    chunks published after their per-chunk deadline, and chunks the
//	    encode-time forecast dropped to the degraded uniform rung.
//	pano_live_encode_seconds / pano_live_publish_latency_seconds
//	    per-chunk JND/tiling encode time and capture→publish latency.
//	pano_live_expired_chunks_total
//	    chunks retired from the availability window (their tiles leave
//	    the catalog; blobs follow at the GC retention horizon).
//	pano_store_puts_total / pano_store_put_bytes_total / pano_store_dedup_total
//	    content-addressed blob writes, their bytes, and writes that
//	    deduplicated against an existing digest.
//	pano_store_blobs / pano_store_bytes / pano_store_gets_total
//	    resident blob count/bytes and reads.
//	pano_store_gc_runs_total / pano_store_gc_removed_total / pano_store_gc_reclaimed_bytes_total
//	    ref-counted GC activity past the retention horizon.
//	pano_store_recovered_tmp_total / pano_store_corrupt_blobs_total
//	    crash scrubbing at Open: abandoned tmp files removed and blobs
//	    whose payload no longer matches their digest (torn writes).
//	pano_store_catalog_writes_total
//	    atomic catalog-head replacements.
//	pano_client_live_edge_wait_seconds_total / pano_client_live_edge_timeouts_total
//	    time sessions spent blocked at the live edge polling for the
//	    manifest to grow, and sessions that gave up on a dead feed
//	    (ending cleanly, never aborting).
//	pano_client_live_skips_total / pano_client_live_latency_sec
//	    chunks skipped by the low-latency policy (window expiry or
//	    skip-to-edge) and the session's current edge latency; the edge
//	    proxy's refusal to prefetch past the edge shows up as
//	    pano_edge_prefetch_total{result="live_edge"}.
//
// The companion span tracer (internal/trace, same nil-is-off
// contract) shares this taxonomy: where a metric aggregates, a span
// tree shows one session's actual timeline. Span names map to the
// paper as:
//
//	session, chunk
//	    one playback session and its per-chunk download loop — the unit
//	    of every per-chunk metric above.
//	estimate, mpc, assign
//	    the §6.1 client decision pipeline: bandwidth/viewpoint
//	    estimation, the MPC chunk-level bitrate decision
//	    (pano_abr_decision_seconds is this span aggregated), and the
//	    tile-level quality allocation (pano_planner_plan_seconds).
//	fetch, tile_fetch, attempt
//	    the §7 transport: the chunk's tile downloads, one tile's trip
//	    down the retry/degrade/skip ladder, and each HTTP try —
//	    annotated with rung, deadline, backoff, and error class
//	    (pano_client_tile_attempt_seconds aggregates attempts; its
//	    exemplars point back at these traces).
//	stitch
//	    §7's stitch-and-score step (the est_pspnr_db annotation feeds
//	    pano_client_est_pspnr_db).
//	http_request
//	    the §6.2 server's handler span, stitched into the client's
//	    trace via the W3C traceparent header and annotated with any
//	    chaos-injected fault (pano_http_request_seconds aggregates it).
//
// The continuous-telemetry layer (internal/telemetry, the same
// nil-is-off contract) scrapes this registry into windowed series and
// evaluates burn-rate SLOs over the metrics above. Each default SLO
// guards one paper claim (the same map lives in each SLO's Guards
// field, shown at /debug/slo and on the dashboard):
//
//	rebuffer (rate of pano_{client,sim}_rebuffer_seconds_total vs wall time)
//	    the buffering-ratio axis of Figures 12/17 — the paper's systems
//	    comparison holds stall time near zero; the SLO budgets it at 5%.
//	pspnr_floor (pano_{client,sim}_session_pspnr_db >= 30 dB)
//	    the quality axis of Figures 13/15 — sessions below the Table 3
//	    MOS-2 band are the regressions those figures would show.
//	tile_p99 (p99 of pano_client_tile_attempt_seconds | pano_http_request_seconds <= 0.5s)
//	    §6.2/§8.4 serving overhead — tile fetch tail latency within half
//	    a chunk duration, the bound that keeps the §7 retry ladder off
//	    the stall path.
//	edge_hit (pano_edge_hit_ratio >= 0.5)
//	    the edge-tier offload claim measured by BENCH_edge — the cache
//	    absorbing most tile demand is what makes the §6.2 DASH-plain
//	    interface CDN-friendly in practice.
//	abort (pano_client_sessions_total{status=manifest_error|tile_error} vs all)
//	    §7's resilience claim that sessions degrade but never abort;
//	    terminal error statuses are budgeted at 2% of sessions.
//
// The federation layer (internal/telemetry's Scraper, served by
// cmd/pano-obsd) merges many processes' expositions — parsed back into
// snapshot series by ParsePrometheus — into one cluster view, and
// describes its own health in the same format:
//
//	pano_build_info{commit,go_version}
//	    constant 1 per process, stamped with the building commit (the
//	    same resolution as the BENCH_*.json provenance fields) — count
//	    the distinct commit labels across instances to spot a
//	    mixed-build fleet.
//	pano_federation_target_up{instance}
//	    1 while the target's last scrape succeeded, 0 once it fails; a
//	    down target's series freeze at their last-good values in the
//	    rollup instead of vanishing, so cluster rates dip only when the
//	    work stopped, not when the scrape did.
//	pano_federation_scrapes_total / pano_federation_scrape_errors_total
//	    per-instance scrape attempts and failures.
//	pano_federation_targets / pano_federation_stale_targets
//	    configured targets and how many are currently frozen.
//	pano_federation_unmergeable_families
//	    histogram families excluded from the cluster rollup because
//	    instances disagree on bucket layout (their per-instance series
//	    remain).
//
// Event-ring overflow is itself observable: EventLog.ObserveDrops
// mirrors the ring's drop count as pano_events_dropped_total, and the
// telemetry sampler mirrors the tracer's bounded-store rejections as
// the pano_trace_store_dropped_spans gauge — the two places the
// observability layer could silently lose data.
//
// Histograms accept an optional exemplar per observation
// (ObserveExemplar): the trace ID of the most recent observation in
// each bucket, rendered as "# exemplar" comment lines alongside the
// Prometheus exposition, linking a latency bucket to a concrete trace
// at /debug/traces.
//
// Wiring: internal/server mounts /metrics, /debug/events, and
// /debug/traces; internal/client.Stream, internal/sim.Run,
// internal/abr, and internal/player accept a *Registry (nil = off);
// cmd/pano-server adds optional net/http/pprof; cmd/pano-obsd
// federates every process's /metrics into the cluster view above.
package obs
