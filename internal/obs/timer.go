package obs

import "time"

// Timer measures one interval into a latency histogram. It is a value
// type, so starting one allocates nothing, and it is nil-safe through
// Histogram: a Timer over a nil histogram still measures (callers may
// want the duration) but records nowhere.
type Timer struct {
	h     *Histogram
	start time.Time
}

// NewTimer starts a timer that will record seconds into h.
func NewTimer(h *Histogram) Timer {
	return Timer{h: h, start: time.Now()}
}

// ObserveDuration records the elapsed time into the histogram (in
// seconds) and returns it.
func (t Timer) ObserveDuration() time.Duration {
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// Time runs f and records its duration into h.
func Time(h *Histogram, f func()) {
	t := NewTimer(h)
	f()
	t.ObserveDuration()
}
