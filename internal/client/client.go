// Package client implements the HTTP streaming client of §7: it fetches
// the manifest, runs the same MPC + tile-level adaptation loop as the
// simulator against a real HTTP server over a persistent connection,
// measures throughput from its own downloads, and stitches per-tile
// buffers into panoramic frames with row-major copies.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/mathx"
	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/quality"
	"pano/internal/server"
	"pano/internal/trace"
	"pano/internal/viewport"
)

// Client streams one video from a Pano HTTP server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; http.DefaultClient if nil.
	HTTP *http.Client
}

// New returns a client for the given base URL with a dedicated
// transport (persistent connections, as in §7).
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 4},
			Timeout:   30 * time.Second,
		},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

// drainClose consumes what remains of a response body (bounded) before
// closing it, so the persistent transport can reuse the connection even
// on non-200 answers instead of tearing it down.
func drainClose(resp *http.Response) {
	_, _ = io.CopyN(io.Discard, resp.Body, 64<<10)
	resp.Body.Close()
}

// FetchManifest downloads and validates the manifest.
func (c *Client) FetchManifest(ctx context.Context) (*manifest.Video, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/manifest.json", nil)
	if err != nil {
		return nil, err
	}
	if s := trace.FromContext(ctx); s != nil {
		req.Header.Set("traceparent", s.Traceparent())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: manifest: %w", err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: manifest: %w", &StatusError{Code: resp.StatusCode})
	}
	m, err := manifest.Decode(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return m, nil
}

// FetchTile downloads one tile object and verifies its header.
func (c *Client) FetchTile(ctx context.Context, k, ti int, l codec.Level) ([]byte, error) {
	url := c.BaseURL + server.TilePath(k, ti, l)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if s := trace.FromContext(ctx); s != nil {
		// Stitch the server's handler span into this trace (W3C hop).
		req.Header.Set("traceparent", s.Traceparent())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: tile %d/%d/%d: %w", k, ti, int(l), err)
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: tile %d/%d/%d: %w", k, ti, int(l), &StatusError{Code: resp.StatusCode})
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 {
		return nil, fmt.Errorf("client: tile %d/%d/%d: short object (%d bytes)", k, ti, int(l), len(data))
	}
	if gk := binary.BigEndian.Uint32(data[0:]); int(gk) != k {
		return nil, fmt.Errorf("client: tile %d/%d/%d: header chunk mismatch %d", k, ti, int(l), gk)
	}
	if gt := binary.BigEndian.Uint32(data[4:]); int(gt) != ti {
		return nil, fmt.Errorf("client: tile %d/%d/%d: header tile mismatch %d", k, ti, int(l), gt)
	}
	return data, nil
}

// ChunkResult records one chunk's streaming outcome.
type ChunkResult struct {
	Chunk int
	// Levels are the delivered per-tile levels: degraded tiles show the
	// level they were actually fetched at, skipped tiles the lowest
	// level (their on-screen content is the previous chunk's, §7).
	Levels     abr.Allocation
	Bytes      int
	Download   time.Duration
	Throughput float64 // bits/s measured from this chunk's successful attempts
	// Retries counts failed fetch attempts across the chunk's tiles;
	// Degraded and Skipped count tiles that fell down the ladder.
	Retries  int
	Degraded int
	Skipped  int
	// Stale marks tiles that were skipped (their on-screen content is
	// the previous chunk's), indexed like Levels; nil when no tile was
	// skipped. It lets callers re-score the delivered frame — e.g. the
	// swarm engine's ground-truth PSPNR — without re-deriving the
	// ladder outcome.
	Stale []bool
}

// StreamConfig tunes a streaming session.
type StreamConfig struct {
	// BufferTargetSec is the MPC target (default 2).
	BufferTargetSec float64
	// Planner decides per-tile levels (default Pano's).
	Planner player.Planner
	// MaxChunks limits the session length (0 = whole video).
	MaxChunks int
	// MaxRateBps caps the bandwidth estimate fed to the controller,
	// emulating a shaped link when the real transport (e.g. loopback)
	// is effectively unbounded. 0 = no cap.
	MaxRateBps float64
	// Obs receives per-chunk QoE metrics (estimated PSPNR, rebuffer
	// seconds, bytes, ABR decisions); nil disables instrumentation at
	// zero cost.
	Obs *obs.Registry
	// Log receives structured per-chunk events and a session_summary
	// event that fires on every exit path, success or failure, with a
	// terminal status; nil disables it.
	Log *obs.EventLog
	// Fetch tunes the resilient tile pipeline (retries, deadlines, the
	// degradation ladder). The zero value selects DefaultFetchPolicy.
	Fetch FetchPolicy
	// Trace, when set, records the session as a span tree — session →
	// chunk → {estimate, mpc, assign, fetch → tile_fetch → attempt,
	// stitch} — with the client's traceparent header stitching
	// server-side handler spans into the same trace. nil disables
	// tracing at zero cost (no span is ever allocated).
	Trace *trace.Tracer
	// Clock supplies every time observation the loop makes (downloads,
	// backoffs, attempt deadlines, pacing). nil selects RealClock;
	// internal/swarm injects a virtual clock to run sessions in
	// discrete-event time.
	Clock Clock
	// MaxBufferSec caps prefetch like sim.Config.MaxBufferSec: when the
	// post-chunk buffer would exceed it, the session idles on the Clock
	// without draining (playback continues against buffered media).
	// 0 disables pacing — the historical HTTP behaviour, where the
	// real link is the pace.
	MaxBufferSec float64
	// SimModel aligns the chunk-level control model with sim.Run so a
	// virtual-transport session reproduces the simulator's decisions:
	// cold start pins prev to the lowest level, the MPC horizon uses
	// reference-PSPNR qualities (player.MeanRefPSPNR/10) instead of
	// level ranks, and leftover predicted capacity tops up the tile
	// budget. Off (the default) keeps the HTTP client's historical
	// model bit-for-bit.
	SimModel bool
	// Live tunes low-latency behaviour against a live manifest
	// (edge-poll cadence, skip-to-edge policy, dead-feed timeout). It is
	// ignored for VOD manifests; the zero value selects defaults derived
	// from the chunk duration.
	Live LivePolicy
}

// StreamResult summarizes an HTTP streaming session.
type StreamResult struct {
	Manifest *manifest.Video
	Chunks   []ChunkResult
	// StartupDelay is manifest fetch + first chunk download.
	StartupDelay time.Duration
	TotalBytes   int
	// RebufferSec is the total stall time implied by the playout
	// buffer model (download time exceeding the buffer).
	RebufferSec float64
	// MeanEstPSPNR is the session-average client-estimated viewport
	// PSPNR. It is only computed when Obs or Log is attached (the
	// estimate costs CPU); 0 otherwise.
	MeanEstPSPNR float64
	// TotalRetries, DegradedTiles, and SkippedTiles aggregate the
	// resilient pipeline's outcomes over the session.
	TotalRetries  int
	DegradedTiles int
	SkippedTiles  int
	// TraceID is the session trace's hex id when StreamConfig.Trace was
	// set and the session was sampled ("" otherwise) — the key for
	// /debug/traces?trace=... and histogram exemplars.
	TraceID string
	// LiveEdgeWaits counts the times the session caught up with the live
	// edge and blocked polling the manifest; LiveEdgeWaitSec is the total
	// time spent blocked there. Zero for VOD sessions.
	LiveEdgeWaits   int
	LiveEdgeWaitSec float64
	// LiveSkippedChunks counts chunks skipped by the live catch-up
	// policy (fell out of the availability window, or further behind the
	// edge than LivePolicy.MaxLatencyChunks).
	LiveSkippedChunks int
	// LiveLatencyMeanSec / LiveLatencyMaxSec report the client's live
	// latency — the gap from the published edge back to the playhead
	// ((edge-k-1)*chunkSec + buffered media) — sampled after each chunk
	// streamed while the manifest was live.
	LiveLatencyMeanSec float64
	LiveLatencyMaxSec  float64
}

// MOS returns the Table 3 opinion-score band of the session's
// estimated quality (meaningful only when MeanEstPSPNR was computed).
func (r *StreamResult) MOS() int { return quality.MOSFromPSPNR(r.MeanEstPSPNR) }

// Stream runs a full adaptive session: fetch manifest, then per chunk
// run MPC + the planner, fetch every tile at its chosen level through
// the resilient pipeline (cfg.Fetch), and account throughput. The
// viewpoint trace plays the role of the HMD sensor feed.
//
// Tile failures never abort the session: a failing tile is retried with
// backoff, re-fetched at the lowest level, and finally skipped
// (stitched at previous content per §7) while the session continues.
// Only manifest failure and context cancellation return an error.
//
// When cfg.Log is attached, Stream emits a session_summary event on
// every exit path — success or failure — with a terminal status: "ok",
// "tile_degraded", "tile_skipped", "manifest_error", or "canceled".
func (c *Client) Stream(ctx context.Context, tr *viewport.Trace, cfg StreamConfig) (*StreamResult, error) {
	return RunSession(ctx, c, tr, cfg)
}

// RunSession runs the full adaptive session loop (estimate → MPC →
// assign → fetch → stitch → QoE) over an arbitrary Transport and
// Clock. Client.Stream is this loop over HTTP and the wall clock;
// internal/swarm runs the same loop over a logical network in virtual
// time. See Stream for the loop's contract.
func RunSession(ctx context.Context, tp Transport, tr *viewport.Trace, cfg StreamConfig) (result *StreamResult, err error) {
	if cfg.BufferTargetSec == 0 {
		cfg.BufferTargetSec = 2
	}
	if cfg.Planner == nil {
		cfg.Planner = player.NewPanoPlanner()
	}
	cfg.Planner = player.Instrument(cfg.Planner, cfg.Obs)
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	clk := cfg.Clock
	instrumented := cfg.Obs != nil || cfg.Log != nil
	pol := cfg.Fetch.withDefaults()

	res := &StreamResult{}
	sess := cfg.Log.Session("planner", cfg.Planner.Name(), "base_url", tp.Target())
	ctx, sessSpan := cfg.Trace.Start(ctx, "session",
		trace.A("component", "client"), trace.A("planner", cfg.Planner.Name()),
		trace.A("base_url", tp.Target()))
	res.TraceID = sessSpan.TraceHex()
	if res.TraceID != "" {
		sess = sess.With("trace_id", res.TraceID)
	}
	stage := "manifest"
	start := clk.Now()
	defer func() {
		status := "ok"
		switch {
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			status = "canceled"
		case err != nil && stage == "manifest":
			status = "manifest_error"
		case err != nil:
			status = "tile_error"
		case res.SkippedTiles > 0:
			status = "tile_skipped"
		case res.DegradedTiles > 0:
			status = "tile_degraded"
		}
		sessSpan.Annotate("status", status)
		sessSpan.Annotate("chunks", len(res.Chunks))
		sessSpan.Annotate("retries", res.TotalRetries)
		if err != nil {
			sessSpan.SetError(status)
		}
		sessSpan.End()
		cfg.Obs.Counter("pano_client_sessions_total", "streaming sessions by terminal status",
			obs.L("status", status)).Inc()
		args := []any{
			"status", status, "chunks_streamed", len(res.Chunks),
			"total_bytes", res.TotalBytes, "rebuffer_sec", res.RebufferSec,
			"startup_sec", res.StartupDelay.Seconds(),
			"elapsed_sec", clk.Since(start).Seconds(),
			"retries", res.TotalRetries,
			"tiles_degraded", res.DegradedTiles, "tiles_skipped", res.SkippedTiles,
		}
		if instrumented {
			args = append(args, "mean_est_pspnr_db", res.MeanEstPSPNR, "mos", res.MOS())
		}
		if err != nil {
			args = append(args, "error", err.Error())
		}
		sess.Info("session_summary", args...)
	}()

	m, err := tp.Manifest(ctx)
	if err != nil {
		return nil, err
	}
	stage = "stream"
	res.Manifest = m
	tiles0 := 0
	if len(m.Chunks) > 0 {
		tiles0 = len(m.Chunks[0].Tiles)
	}
	sess = sess.With("video", m.Name, "chunks", m.NumChunks(), "tiles", tiles0)
	if m.Live {
		sess = sess.With("live", true)
	}

	// QoE instruments (no-ops when cfg.Obs is nil).
	chunksTotal := cfg.Obs.Counter("pano_client_chunks_total", "chunks streamed")
	bytesTotal := cfg.Obs.Counter("pano_client_bytes_total", "media bytes downloaded")
	rebufTotal := cfg.Obs.Counter("pano_client_rebuffer_seconds_total", "total stall seconds")
	dlSeconds := cfg.Obs.Histogram("pano_client_chunk_download_seconds",
		"per-chunk download time over HTTP", nil)
	estPSPNR := cfg.Obs.Histogram("pano_client_est_pspnr_db",
		"client-estimated per-chunk viewport PSPNR", quality.PSPNRBuckets)
	bufGauge := cfg.Obs.Gauge("pano_client_buffer_sec", "playback buffer after each chunk")
	var prof *jnd.Profile
	if instrumented {
		prof = jnd.Default()
	}
	ins := newFetchInstruments(cfg.Obs)
	fetchRNG := mathx.NewRNG(pol.Seed + 0xba0ff)

	est := player.NewEstimator()
	mpc := abr.NewMPC(cfg.BufferTargetSec)
	mpc.Obs = cfg.Obs
	bw := abr.NewBandwidthPredictor()
	bw.Obs = cfg.Obs
	live := m.Live
	livePol := cfg.Live.withDefaults(m.ChunkSec)
	var buffer, estSum float64
	var liveLatSum float64
	liveChunks := 0
	prev := codec.Level(-1)
	streamed := 0
	for k := m.FirstChunk; ; k++ {
		if cfg.MaxChunks > 0 && streamed >= cfg.MaxChunks {
			break
		}
		if live {
			// Never schedule a fetch at or past the live edge: block here
			// polling the manifest (and let the catch-up policy move k)
			// until chunk k is published, the feed ends, or it times out.
			sr, lerr := liveEdgeSync(ctx, tp, clk, m, k, livePol, &buffer, res, cfg.Obs, rebufTotal, sess)
			if lerr != nil {
				return nil, lerr
			}
			m, k, live = sr.m, sr.k, sr.m.Live
			res.Manifest = m
			if sr.ended {
				break
			}
		}
		if k >= m.NumChunks() {
			break
		}
		cctx, chunkSpan := trace.StartSpan(ctx, "chunk", trace.A("chunk", k))
		nowMedia := float64(k)*m.ChunkSec - buffer
		if nowMedia < 0 {
			nowMedia = 0
		}
		// Phase: bandwidth + viewpoint estimation.
		_, eSpan := trace.StartSpan(cctx, "estimate")
		pred := bw.Predict()
		if cfg.MaxRateBps > 0 && pred > cfg.MaxRateBps {
			pred = cfg.MaxRateBps
		}
		view := est.View(m, tr, k, nowMedia)
		eSpan.Annotate("pred_bps", pred)
		eSpan.End()
		// Phase: chunk-level MPC decision.
		var budget float64
		if pred == 0 {
			budget = m.ChunkBits(k, codec.Level(codec.NumLevels-1))
			if cfg.SimModel {
				// Cold start pins prev so the switch penalty binds from
				// chunk 1, as in sim.Run.
				prev = codec.Level(codec.NumLevels - 1)
			}
		} else {
			horizon := make([]abr.ChunkPlan, 0, mpc.Horizon)
			for j := k; j < k+mpc.Horizon && j < m.NumChunks(); j++ {
				var p abr.ChunkPlan
				for l := 0; l < codec.NumLevels; l++ {
					p.Bits[l] = m.ChunkBits(j, codec.Level(l))
					if cfg.SimModel {
						p.Quality[l] = player.MeanRefPSPNR(m, j, codec.Level(l)) / 10
					} else {
						p.Quality[l] = float64(codec.NumLevels - l)
					}
				}
				horizon = append(horizon, p)
			}
			lv := mpc.PickLevelCtx(cctx, buffer, pred, m.ChunkSec, prev, horizon)
			budget = m.ChunkBits(k, lv)
			prev = lv
			if cfg.SimModel {
				// The level menu is coarse; fill the remaining predicted
				// capacity (sim.Run's top-up) so the tile allocator can
				// spend what the link actually offers.
				capacity := 0.9 * pred * (m.ChunkSec + math.Max(0, buffer-cfg.BufferTargetSec))
				if capacity > budget {
					budget = math.Min(capacity, m.ChunkBits(k, 0))
				}
			}
		}
		// Phase: per-tile quality assignment.
		alloc := player.PlanWithContext(cctx, cfg.Planner, m, k, view, budget)

		// Phase: tile fetches through the resilient ladder.
		fctx, fSpan := trace.StartSpan(cctx, "fetch")
		t0 := clk.Now()
		bytes := 0
		var goodBits float64
		var goodTime time.Duration
		var retries, degraded, skipped int
		delivered := append(abr.Allocation(nil), alloc...)
		var stale []bool
		for ti, l := range alloc {
			tf, ferr := fetchTileResilient(fctx, tp, clk, k, ti, l, pol, buffer, k == 0, fetchRNG, ins, sess)
			retries += tf.retries
			if ferr != nil {
				res.TotalRetries += retries
				fSpan.SetError("canceled")
				fSpan.End()
				chunkSpan.End()
				return nil, ferr
			}
			delivered[ti] = tf.level
			if tf.skipped {
				skipped++
				if stale == nil {
					stale = make([]bool, len(alloc))
				}
				stale[ti] = true
				delivered[ti] = codec.Level(codec.NumLevels - 1)
				continue
			}
			if tf.degraded {
				degraded++
			}
			bytes += int(tf.bits) / 8
			goodBits += tf.bits
			goodTime += tf.goodput
		}
		dl := clk.Since(t0)
		if dl <= 0 {
			dl = time.Microsecond
		}
		fSpan.Annotate("bytes", bytes)
		fSpan.Annotate("retries", retries)
		fSpan.Annotate("tiles_degraded", degraded)
		fSpan.Annotate("tiles_skipped", skipped)
		fSpan.End()
		// Throughput from successful attempts only: retry and backoff
		// overhead must not poison the bandwidth predictor.
		var thr float64
		if goodBits > 0 {
			if goodTime <= 0 {
				goodTime = time.Microsecond
			}
			thr = goodBits / goodTime.Seconds()
			bw.Observe(thr)
		}
		res.Chunks = append(res.Chunks, ChunkResult{
			Chunk: k, Levels: delivered, Bytes: bytes, Download: dl, Throughput: thr,
			Retries: retries, Degraded: degraded, Skipped: skipped, Stale: stale,
		})
		res.TotalBytes += bytes
		res.TotalRetries += retries
		res.DegradedTiles += degraded
		res.SkippedTiles += skipped
		if streamed == 0 {
			res.StartupDelay = clk.Since(start)
		}
		var stall float64
		if streamed > 0 && dl.Seconds() > buffer {
			stall = dl.Seconds() - buffer
			res.RebufferSec += stall
		}
		buffer = buffer - dl.Seconds()
		if buffer < 0 {
			buffer = 0
		}
		buffer += m.ChunkSec
		if cfg.MaxBufferSec > 0 && buffer > cfg.MaxBufferSec {
			// Paced prefetch (sim parity): idle without draining —
			// playback continues against the buffered media.
			idle := buffer - cfg.MaxBufferSec
			if serr := clk.Sleep(ctx, time.Duration(idle*float64(time.Second))); serr != nil {
				chunkSpan.End()
				return nil, serr
			}
			buffer = cfg.MaxBufferSec
		}

		chunksTotal.Inc()
		bytesTotal.Add(float64(bytes))
		rebufTotal.Add(stall)
		dlSeconds.ObserveExemplar(dl.Seconds(), chunkSpan.TraceHex())
		bufGauge.Set(buffer)
		if instrumented {
			// Phase: stitch + viewport-quality scoring of what was
			// actually delivered (degraded/stale tiles included).
			_, sSpan := trace.StartSpan(cctx, "stitch")
			guess := est.BestGuessView(m, tr, k, nowMedia)
			e := player.FramePSPNRDegraded(m, k, delivered, stale, guess, prof)
			sSpan.Annotate("est_pspnr_db", e)
			sSpan.End()
			estPSPNR.Observe(e)
			estSum += e
			res.MeanEstPSPNR = estSum / float64(streamed+1)
			sess.Debug("chunk_done",
				"chunk", k, "bytes", bytes, "download_sec", dl.Seconds(),
				"throughput_bps", thr, "stall_sec", stall, "buffer_sec", buffer,
				"est_pspnr_db", e, "retries", retries,
				"tiles_degraded", degraded, "tiles_skipped", skipped)
		}
		chunkSpan.Annotate("bytes", bytes)
		chunkSpan.Annotate("stall_sec", stall)
		chunkSpan.Annotate("buffer_sec", buffer)
		chunkSpan.Annotate("throughput_bps", thr)
		if live {
			// Live latency: fully published chunks between the playhead
			// and the edge, plus the media already buffered.
			lat := float64(m.NumChunks()-k-1)*m.ChunkSec + buffer
			liveLatSum += lat
			liveChunks++
			if lat > res.LiveLatencyMaxSec {
				res.LiveLatencyMaxSec = lat
			}
			cfg.Obs.Gauge("pano_client_live_latency_sec",
				"playhead-to-edge live latency after each chunk").Set(lat)
			chunkSpan.Annotate("live_latency_sec", lat)
		}
		chunkSpan.End()
		streamed++
	}
	if liveChunks > 0 {
		res.LiveLatencyMeanSec = liveLatSum / float64(liveChunks)
	}
	if instrumented {
		cfg.Obs.Gauge("pano_client_session_pspnr_db",
			"session mean client-estimated viewport PSPNR").Set(res.MeanEstPSPNR)
		cfg.Obs.Gauge("pano_client_session_mos",
			"Table 3 opinion-score band of the estimated session quality").Set(float64(res.MOS()))
	}
	return res, nil
}

// Stitch assembles per-tile luma buffers into a panoramic frame using
// the tile coordinates from the manifest — the row-major in-memory copy
// of §7. Missing tiles are left at their previous content (zero for a
// fresh frame).
func Stitch(m *manifest.Video, k int, tiles map[int]*frame.Frame, dst *frame.Frame) error {
	if dst.W != m.W || dst.H != m.H {
		return fmt.Errorf("client: stitch target %dx%d, want %dx%d", dst.W, dst.H, m.W, m.H)
	}
	if k < 0 || k >= m.NumChunks() {
		return fmt.Errorf("client: stitch chunk %d out of range", k)
	}
	for ti, tf := range tiles {
		if ti < 0 || ti >= len(m.Chunks[k].Tiles) {
			return fmt.Errorf("client: stitch tile %d out of range", ti)
		}
		r := m.Chunks[k].Tiles[ti].Rect
		if tf.W != r.W() || tf.H != r.H() {
			return fmt.Errorf("client: tile %d buffer %dx%d, rect %v", ti, tf.W, tf.H, r)
		}
		if err := dst.Blit(tf, r.X0, r.Y0); err != nil {
			return err
		}
	}
	return nil
}
