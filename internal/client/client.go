// Package client implements the HTTP streaming client of §7: it fetches
// the manifest, runs the same MPC + tile-level adaptation loop as the
// simulator against a real HTTP server over a persistent connection,
// measures throughput from its own downloads, and stitches per-tile
// buffers into panoramic frames with row-major copies.
package client

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"time"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/manifest"
	"pano/internal/player"
	"pano/internal/server"
	"pano/internal/viewport"
)

// Client streams one video from a Pano HTTP server.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; http.DefaultClient if nil.
	HTTP *http.Client
}

// New returns a client for the given base URL with a dedicated
// transport (persistent connections, as in §7).
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 4},
			Timeout:   30 * time.Second,
		},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP == nil {
		return http.DefaultClient
	}
	return c.HTTP
}

// FetchManifest downloads and validates the manifest.
func (c *Client) FetchManifest(ctx context.Context) (*manifest.Video, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/manifest.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: manifest: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: manifest: HTTP %d", resp.StatusCode)
	}
	m, err := manifest.Decode(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return m, nil
}

// FetchTile downloads one tile object and verifies its header.
func (c *Client) FetchTile(ctx context.Context, k, ti int, l codec.Level) ([]byte, error) {
	url := c.BaseURL + server.TilePath(k, ti, l)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: tile %d/%d/%d: %w", k, ti, int(l), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: tile %d/%d/%d: HTTP %d", k, ti, int(l), resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if len(data) < 16 {
		return nil, fmt.Errorf("client: tile %d/%d/%d: short object (%d bytes)", k, ti, int(l), len(data))
	}
	if gk := binary.BigEndian.Uint32(data[0:]); int(gk) != k {
		return nil, fmt.Errorf("client: tile %d/%d/%d: header chunk mismatch %d", k, ti, int(l), gk)
	}
	if gt := binary.BigEndian.Uint32(data[4:]); int(gt) != ti {
		return nil, fmt.Errorf("client: tile %d/%d/%d: header tile mismatch %d", k, ti, int(l), gt)
	}
	return data, nil
}

// ChunkResult records one chunk's streaming outcome.
type ChunkResult struct {
	Chunk      int
	Levels     abr.Allocation
	Bytes      int
	Download   time.Duration
	Throughput float64 // bits/s measured from this chunk
}

// StreamConfig tunes a streaming session.
type StreamConfig struct {
	// BufferTargetSec is the MPC target (default 2).
	BufferTargetSec float64
	// Planner decides per-tile levels (default Pano's).
	Planner player.Planner
	// MaxChunks limits the session length (0 = whole video).
	MaxChunks int
	// MaxRateBps caps the bandwidth estimate fed to the controller,
	// emulating a shaped link when the real transport (e.g. loopback)
	// is effectively unbounded. 0 = no cap.
	MaxRateBps float64
}

// StreamResult summarizes an HTTP streaming session.
type StreamResult struct {
	Manifest *manifest.Video
	Chunks   []ChunkResult
	// StartupDelay is manifest fetch + first chunk download.
	StartupDelay time.Duration
	TotalBytes   int
}

// Stream runs a full adaptive session: fetch manifest, then per chunk
// run MPC + the planner, fetch every tile at its chosen level, and
// account throughput. The viewpoint trace plays the role of the HMD
// sensor feed.
func (c *Client) Stream(ctx context.Context, tr *viewport.Trace, cfg StreamConfig) (*StreamResult, error) {
	if cfg.BufferTargetSec == 0 {
		cfg.BufferTargetSec = 2
	}
	if cfg.Planner == nil {
		cfg.Planner = player.NewPanoPlanner()
	}
	start := time.Now()
	m, err := c.FetchManifest(ctx)
	if err != nil {
		return nil, err
	}
	res := &StreamResult{Manifest: m}
	est := player.NewEstimator()
	mpc := abr.NewMPC(cfg.BufferTargetSec)
	bw := abr.NewBandwidthPredictor()
	n := m.NumChunks()
	if cfg.MaxChunks > 0 && cfg.MaxChunks < n {
		n = cfg.MaxChunks
	}
	var buffer float64
	prev := codec.Level(-1)
	for k := 0; k < n; k++ {
		nowMedia := float64(k)*m.ChunkSec - buffer
		if nowMedia < 0 {
			nowMedia = 0
		}
		var budget float64
		pred := bw.Predict()
		if cfg.MaxRateBps > 0 && pred > cfg.MaxRateBps {
			pred = cfg.MaxRateBps
		}
		if pred == 0 {
			budget = m.ChunkBits(k, codec.Level(codec.NumLevels-1))
		} else {
			horizon := make([]abr.ChunkPlan, 0, mpc.Horizon)
			for j := k; j < k+mpc.Horizon && j < m.NumChunks(); j++ {
				var p abr.ChunkPlan
				for l := 0; l < codec.NumLevels; l++ {
					p.Bits[l] = m.ChunkBits(j, codec.Level(l))
					p.Quality[l] = float64(codec.NumLevels - l)
				}
				horizon = append(horizon, p)
			}
			lv := mpc.PickLevel(buffer, pred, m.ChunkSec, prev, horizon)
			budget = m.ChunkBits(k, lv)
			prev = lv
		}
		view := est.View(m, tr, k, nowMedia)
		alloc := cfg.Planner.Plan(m, k, view, budget)

		t0 := time.Now()
		bytes := 0
		for ti, l := range alloc {
			data, err := c.FetchTile(ctx, k, ti, l)
			if err != nil {
				return nil, err
			}
			bytes += len(data)
		}
		dl := time.Since(t0)
		if dl <= 0 {
			dl = time.Microsecond
		}
		thr := float64(bytes*8) / dl.Seconds()
		bw.Observe(thr)
		res.Chunks = append(res.Chunks, ChunkResult{
			Chunk: k, Levels: alloc, Bytes: bytes, Download: dl, Throughput: thr,
		})
		res.TotalBytes += bytes
		if k == 0 {
			res.StartupDelay = time.Since(start)
		}
		buffer = buffer - dl.Seconds()
		if buffer < 0 {
			buffer = 0
		}
		buffer += m.ChunkSec
	}
	return res, nil
}

// Stitch assembles per-tile luma buffers into a panoramic frame using
// the tile coordinates from the manifest — the row-major in-memory copy
// of §7. Missing tiles are left at their previous content (zero for a
// fresh frame).
func Stitch(m *manifest.Video, k int, tiles map[int]*frame.Frame, dst *frame.Frame) error {
	if dst.W != m.W || dst.H != m.H {
		return fmt.Errorf("client: stitch target %dx%d, want %dx%d", dst.W, dst.H, m.W, m.H)
	}
	if k < 0 || k >= m.NumChunks() {
		return fmt.Errorf("client: stitch chunk %d out of range", k)
	}
	for ti, tf := range tiles {
		if ti < 0 || ti >= len(m.Chunks[k].Tiles) {
			return fmt.Errorf("client: stitch tile %d out of range", ti)
		}
		r := m.Chunks[k].Tiles[ti].Rect
		if tf.W != r.W() || tf.H != r.H() {
			return fmt.Errorf("client: tile %d buffer %dx%d, rect %v", ti, tf.W, tf.H, r)
		}
		if err := dst.Blit(tf, r.X0, r.Y0); err != nil {
			return err
		}
	}
	return nil
}
