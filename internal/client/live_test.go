package client

import (
	"context"
	"sync"
	"testing"
	"time"

	"pano/internal/codec"
	"pano/internal/manifest"
)

// scriptedTransport serves a scripted sequence of manifest refreshes —
// each Manifest call returns the next entry (sticking at the last) —
// and answers every tile instantly at its manifest size. It is the
// deterministic stand-in for an origin whose live edge moves.
type scriptedTransport struct {
	full *manifest.Video // sizes for Tile, regardless of script position

	mu     sync.Mutex
	script []*manifest.Video
	idx    int
	calls  int
}

func (f *scriptedTransport) Target() string { return "fake://live" }

func (f *scriptedTransport) Manifest(ctx context.Context) (*manifest.Video, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.script[f.idx]
	if f.idx < len(f.script)-1 {
		f.idx++
	}
	f.calls++
	return m, nil
}

func (f *scriptedTransport) Tile(ctx context.Context, k, ti int, l codec.Level) (float64, error) {
	return f.full.Chunks[k].Tiles[ti].Bits[l], nil
}

// liveCopy returns a live manifest holding the first n chunks of m.
func liveCopy(m *manifest.Video, n int, seq int64, stillLive bool) *manifest.Video {
	c := *m
	c.Chunks = m.Chunks[:n]
	c.Live = stillLive
	c.Seq = seq
	return &c
}

func livePolicy() LivePolicy {
	return LivePolicy{PollInterval: time.Millisecond, EdgeTimeout: 5 * time.Second}
}

// TestLiveSessionFollowsEdge: a session blocked at the edge resumes when
// a refresh grows the manifest, refuses to adopt a backwards refresh (a
// lagging origin), and ends cleanly when the feed clears Live.
func TestLiveSessionFollowsEdge(t *testing.T) {
	full := fixture(t).man
	tp := &scriptedTransport{full: full, script: []*manifest.Video{
		liveCopy(full, 1, 1, true),
		liveCopy(full, 2, 2, true),
		liveCopy(full, 1, 1, true), // lagging origin: edge went backwards
		liveCopy(full, 3, 3, false),
	}}
	res, err := RunSession(context.Background(), tp, fixture(t).tr, StreamConfig{
		Live: livePolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 3 {
		t.Fatalf("streamed %d chunks, want 3", len(res.Chunks))
	}
	for i, cr := range res.Chunks {
		if cr.Chunk != i {
			t.Fatalf("chunk %d streamed out of order as %d", i, cr.Chunk)
		}
	}
	if res.LiveEdgeWaits == 0 {
		t.Fatal("session never blocked at the edge despite a growing manifest")
	}
	if res.LiveLatencyMaxSec <= 0 {
		t.Fatal("live latency never sampled")
	}
}

// TestLiveSessionSkipsExpiredWindow: when the availability window slides
// past the playhead, the session skips to the window start (the
// chunk-level answer to 410 Gone) instead of fetching retired tiles.
func TestLiveSessionSkipsExpiredWindow(t *testing.T) {
	full := fixture(t).man
	slid := liveCopy(full, 3, 2, false)
	slid.FirstChunk = 2
	tp := &scriptedTransport{full: full, script: []*manifest.Video{
		liveCopy(full, 1, 1, true),
		slid,
	}}
	res, err := RunSession(context.Background(), tp, fixture(t).tr, StreamConfig{
		Live: livePolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveSkippedChunks != 1 {
		t.Fatalf("LiveSkippedChunks = %d, want 1", res.LiveSkippedChunks)
	}
	want := []int{0, 2}
	if len(res.Chunks) != len(want) {
		t.Fatalf("streamed %d chunks, want %d", len(res.Chunks), len(want))
	}
	for i, cr := range res.Chunks {
		if cr.Chunk != want[i] {
			t.Fatalf("streamed chunk %d at position %d, want %d", cr.Chunk, i, want[i])
		}
	}
}

// TestLiveSessionSkipsToEdgeWhenBehind: a refresh that jumps far ahead
// triggers the skip-to-edge latency policy.
func TestLiveSessionSkipsToEdgeWhenBehind(t *testing.T) {
	full := fixture(t).man
	tp := &scriptedTransport{full: full, script: []*manifest.Video{
		liveCopy(full, 1, 1, true),
		liveCopy(full, 3, 2, false),
	}}
	pol := livePolicy()
	pol.MaxLatencyChunks = 1
	res, err := RunSession(context.Background(), tp, fixture(t).tr, StreamConfig{Live: pol})
	if err != nil {
		t.Fatal(err)
	}
	// After chunk 0 the refresh shows edge 3: 2 chunks behind > 1, so the
	// session skips chunk 1 and plays 2 (the newest published).
	want := []int{0, 2}
	if len(res.Chunks) != len(want) || res.Chunks[1].Chunk != 2 {
		t.Fatalf("streamed %v, want chunks %v", res.Chunks, want)
	}
	if res.LiveSkippedChunks != 1 {
		t.Fatalf("LiveSkippedChunks = %d, want 1", res.LiveSkippedChunks)
	}
}

// TestLiveSessionEdgeTimeoutEndsCleanly: a feed that dies (manifest
// stops growing, Live never clears) ends the session without an error —
// a late or dead publisher must never abort clients.
func TestLiveSessionEdgeTimeoutEndsCleanly(t *testing.T) {
	full := fixture(t).man
	tp := &scriptedTransport{full: full, script: []*manifest.Video{
		liveCopy(full, 1, 1, true),
	}}
	res, err := RunSession(context.Background(), tp, fixture(t).tr, StreamConfig{
		Live: LivePolicy{PollInterval: time.Millisecond, EdgeTimeout: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("dead feed aborted the session: %v", err)
	}
	if len(res.Chunks) != 1 {
		t.Fatalf("streamed %d chunks, want the 1 published", len(res.Chunks))
	}
	if res.LiveEdgeWaitSec <= 0 {
		t.Fatal("no edge wait recorded before timing out")
	}
}

// TestLiveSessionMaxChunks: MaxChunks bounds a live session exactly like
// a VOD one.
func TestLiveSessionMaxChunks(t *testing.T) {
	full := fixture(t).man
	tp := &scriptedTransport{full: full, script: []*manifest.Video{
		liveCopy(full, 3, 1, true),
	}}
	res, err := RunSession(context.Background(), tp, fixture(t).tr, StreamConfig{
		MaxChunks: 1, Live: livePolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 1 {
		t.Fatalf("streamed %d chunks, want 1", len(res.Chunks))
	}
}
