package client

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"pano/internal/mathx"
	"pano/internal/trace"
)

// RawResult is the outcome of a resilient conditional GET of one origin
// object. Unlike FetchTile it is byte-transparent: any definitive origin
// answer (2xx, 3xx, 4xx) is a result, not an error, because a caching
// tier must be able to store and replay negative answers too.
type RawResult struct {
	// Status is the origin's HTTP status code.
	Status int
	// Body is the response body ("" for 304; error pages for 4xx).
	Body []byte
	// ETag and ContentType echo the origin's validators.
	ETag        string
	ContentType string
	// NotModified is true when the origin answered 304 to the
	// conditional request: the caller's cached copy is still current and
	// Body is empty by design.
	NotModified bool
}

// FetchRaw performs a resilient conditional GET of an arbitrary origin
// path ("/manifest.json", "/video/0/3/1.bin", ...). When etag is
// non-empty the request carries If-None-Match and a 304 answer comes
// back as NotModified — the revalidation fast path. Retryable failures
// (5xx, transport errors, per-attempt deadline expiry) follow pol's
// backoff ladder, exactly like tile fetches but without the level
// downgrade (a cache has no lower rung to fall to); definitive answers
// return immediately. ctx cancellation and attempt exhaustion are the
// only error paths.
func (c *Client) FetchRaw(ctx context.Context, path, etag string, pol FetchPolicy, rng *mathx.RNG) (RawResult, error) {
	pol = pol.withDefaults()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		actx, cancel := context.WithTimeout(ctx, pol.AttemptTimeout)
		res, err := c.fetchRawOnce(actx, path, etag)
		cancel()
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return RawResult{}, ctx.Err()
		}
		lastErr = err
		if !retryable(err) {
			break
		}
		if attempt < pol.MaxAttempts-1 {
			if serr := sleepCtx(ctx, pol.backoff(attempt, rng)); serr != nil {
				return RawResult{}, serr
			}
		}
	}
	return RawResult{}, fmt.Errorf("client: raw %s: %w", path, lastErr)
}

// fetchRawOnce is one attempt: errors are returned only for retryable
// transport/server failures; origin answers below 500 are results.
func (c *Client) fetchRawOnce(ctx context.Context, path, etag string) (RawResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return RawResult{}, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	if s := trace.FromContext(ctx); s != nil {
		req.Header.Set("traceparent", s.Traceparent())
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return RawResult{}, err
	}
	defer drainClose(resp)
	out := RawResult{
		Status:      resp.StatusCode,
		ETag:        resp.Header.Get("ETag"),
		ContentType: resp.Header.Get("Content-Type"),
	}
	if resp.StatusCode == http.StatusNotModified {
		out.NotModified = true
		return out, nil
	}
	if resp.StatusCode >= 500 {
		return RawResult{}, &StatusError{Code: resp.StatusCode}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return RawResult{}, err
	}
	out.Body = body
	return out, nil
}
