package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pano/internal/mathx"
)

func rawTestPolicy() FetchPolicy {
	return FetchPolicy{
		MaxAttempts:    3,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		JitterFrac:     0.5,
		AttemptTimeout: 2 * time.Second,
	}
}

// TestFetchRaw304: a conditional GET whose validator still matches
// comes back NotModified with no body — the revalidation fast path.
func TestFetchRaw304(t *testing.T) {
	const etag = `"cafe"`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", etag)
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Write([]byte("payload"))
	}))
	defer ts.Close()
	c := New(ts.URL)

	res, err := c.FetchRaw(context.Background(), "/x", "", rawTestPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NotModified || string(res.Body) != "payload" || res.ETag != etag {
		t.Fatalf("unconditional fetch: %+v", res)
	}

	res, err = c.FetchRaw(context.Background(), "/x", etag, rawTestPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NotModified {
		t.Fatalf("matching validator should revalidate, got %+v", res)
	}
	if len(res.Body) != 0 {
		t.Errorf("304 carried %d body bytes", len(res.Body))
	}

	res, err = c.FetchRaw(context.Background(), "/x", `"stale"`, rawTestPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NotModified || string(res.Body) != "payload" {
		t.Fatalf("stale validator should refetch, got %+v", res)
	}
}

// TestFetchRawRetriesServerErrors: 5xx answers follow the backoff
// ladder until the origin recovers.
func TestFetchRawRetriesServerErrors(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := New(ts.URL).FetchRaw(context.Background(), "/y", "", rawTestPolicy(), mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "ok" {
		t.Fatalf("body %q", res.Body)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("origin saw %d requests, want 3", got)
	}
}

// TestFetchRawDefinitiveAnswers: 4xx is a result (cacheable by an edge
// tier), not an error, and is never retried.
func TestFetchRawDefinitiveAnswers(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()

	res, err := New(ts.URL).FetchRaw(context.Background(), "/missing", "", rawTestPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusNotFound {
		t.Fatalf("status %d, want 404", res.Status)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("definitive 404 was retried: origin saw %d requests", got)
	}
}

// TestFetchRawExhaustsAttempts: a persistently failing origin yields an
// error after exactly MaxAttempts tries.
func TestFetchRawExhaustsAttempts(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	_, err := New(ts.URL).FetchRaw(context.Background(), "/z", "", rawTestPolicy(), nil)
	if err == nil {
		t.Fatal("want error from persistent 503")
	}
	if got := n.Load(); got != int64(rawTestPolicy().MaxAttempts) {
		t.Errorf("origin saw %d requests, want %d", got, rawTestPolicy().MaxAttempts)
	}
}
