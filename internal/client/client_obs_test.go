package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"pano/internal/obs"
	"pano/internal/server"
)

// streamWithObs runs a session with observability attached and returns
// the result, error, registry, and event log.
func streamWithObs(t *testing.T, url string, ctx context.Context, cfg StreamConfig) (*StreamResult, error, *obs.Registry, *obs.EventLog) {
	t.Helper()
	reg := obs.NewRegistry()
	el := obs.NewEventLog(nil, 256)
	cfg.Obs = reg
	cfg.Log = el
	res, err := New(url).Stream(ctx, fixture(t).tr, cfg)
	return res, err, reg, el
}

func summaryStatus(t *testing.T, el *obs.EventLog) string {
	t.Helper()
	e, ok := el.Last("session_summary")
	if !ok {
		t.Fatal("no session_summary event fired")
	}
	return e.Str("status")
}

func TestStreamRecordsQoEMetrics(t *testing.T) {
	ts := testServer(t)
	res, err, reg, el := streamWithObs(t, ts.URL, context.Background(), StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("pano_client_chunks_total"); got != float64(len(res.Chunks)) {
		t.Errorf("chunks counter %v, result has %d", got, len(res.Chunks))
	}
	if got := reg.CounterValue("pano_client_bytes_total"); got != float64(res.TotalBytes) {
		t.Errorf("bytes counter %v, result has %d", got, res.TotalBytes)
	}
	if got := reg.HistogramCount("pano_client_est_pspnr_db"); got != uint64(len(res.Chunks)) {
		t.Errorf("est pspnr observations %d, want %d", got, len(res.Chunks))
	}
	if res.MeanEstPSPNR <= 0 {
		t.Errorf("MeanEstPSPNR = %v", res.MeanEstPSPNR)
	}
	if mos := res.MOS(); mos < 1 || mos > 5 {
		t.Errorf("MOS = %d", mos)
	}
	if got := reg.CounterValue("pano_client_sessions_total", obs.L("status", "ok")); got != 1 {
		t.Errorf("sessions ok counter = %v", got)
	}
	// MPC decision latency flows through from abr.
	if got := reg.HistogramCount("pano_abr_decision_seconds"); got == 0 {
		t.Error("no ABR decision latency recorded")
	}
	if got := reg.HistogramCount("pano_planner_plan_seconds", obs.L("planner", "pano")); got != uint64(len(res.Chunks)) {
		t.Errorf("planner latency observations %d, want %d", got, len(res.Chunks))
	}
	if status := summaryStatus(t, el); status != "ok" {
		t.Errorf("summary status %q, want ok", status)
	}
	e, _ := el.Last("session_summary")
	if got, ok := e.Attr("chunks_streamed").(int64); !ok || int(got) != len(res.Chunks) {
		t.Errorf("summary chunks_streamed attr = %v", e.Attr("chunks_streamed"))
	}
}

func TestStreamManifestFailureFiresSummary(t *testing.T) {
	// A server that refuses the manifest entirely.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer broken.Close()

	_, err, reg, el := streamWithObs(t, broken.URL, context.Background(), StreamConfig{})
	if err == nil {
		t.Fatal("manifest failure should error")
	}
	if status := summaryStatus(t, el); status != "manifest_error" {
		t.Errorf("summary status %q, want manifest_error", status)
	}
	if got := reg.CounterValue("pano_client_sessions_total", obs.L("status", "manifest_error")); got != 1 {
		t.Errorf("sessions manifest_error counter = %v", got)
	}
	e, _ := el.Last("session_summary")
	if e.Str("error") == "" {
		t.Error("summary should carry the error")
	}
}

func TestStreamMidStreamTileFailureFiresSummary(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	inner := s.Handler()
	var tileReqs atomic.Int64
	// Serve the manifest and the first few tiles, then fail every tile
	// request. The resilient pipeline must NOT abort: the ladder retries,
	// degrades, and finally skips, and the session runs to completion
	// with a tile_skipped summary.
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/video/") && tileReqs.Add(1) > 3 {
			http.Error(w, "disk on fire", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	res, err, reg, el := streamWithObs(t, flaky.URL, context.Background(), StreamConfig{
		MaxChunks: 2,
		Fetch:     fastFetchPolicy(),
	})
	if err != nil {
		t.Fatalf("mid-stream tile failure must not abort the session: %v", err)
	}
	if res.SkippedTiles == 0 {
		t.Error("permanently failing tiles should be skipped")
	}
	if res.TotalRetries == 0 {
		t.Error("failing tiles should have recorded retries")
	}
	if status := summaryStatus(t, el); status != "tile_skipped" {
		t.Errorf("summary status %q, want tile_skipped", status)
	}
	if got := reg.CounterValue("pano_client_sessions_total", obs.L("status", "tile_skipped")); got != 1 {
		t.Errorf("sessions tile_skipped counter = %v", got)
	}
	if got := reg.CounterValue("pano_client_tiles_skipped_total"); got != float64(res.SkippedTiles) {
		t.Errorf("skipped counter %v, result has %d", got, res.SkippedTiles)
	}
}

func TestStreamCancellationFiresSummary(t *testing.T) {
	ts := testServer(t)

	// Cancelled before the manifest fetch.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, _, el := streamWithObs(t, ts.URL, ctx, StreamConfig{})
	if err == nil {
		t.Fatal("cancelled context should error")
	}
	if status := summaryStatus(t, el); status != "canceled" {
		t.Errorf("pre-manifest cancel summary status %q, want canceled", status)
	}

	// Cancelled mid-stream: let the manifest through, then cancel on
	// the first tile request.
	ctx2, cancel2 := context.WithCancel(context.Background())
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	inner := s.Handler()
	tricky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/video/") {
			cancel2()
		}
		inner.ServeHTTP(w, r)
	}))
	defer tricky.Close()
	_, err, reg, el2 := streamWithObs(t, tricky.URL, ctx2, StreamConfig{})
	if err == nil {
		t.Fatal("mid-stream cancel should error")
	}
	if status := summaryStatus(t, el2); status != "canceled" {
		t.Errorf("mid-stream cancel summary status %q, want canceled", status)
	}
	if got := reg.CounterValue("pano_client_sessions_total", obs.L("status", "canceled")); got != 1 {
		t.Errorf("sessions canceled counter = %v", got)
	}
}

func TestStreamUninstrumentedPaysNothing(t *testing.T) {
	ts := testServer(t)
	res, err := New(ts.URL).Stream(context.Background(), fixture(t).tr, StreamConfig{MaxChunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Without Obs/Log the estimate pipeline must stay off.
	if res.MeanEstPSPNR != 0 {
		t.Errorf("MeanEstPSPNR computed without instrumentation: %v", res.MeanEstPSPNR)
	}
}
