package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pano/internal/chaos"
	"pano/internal/codec"
	"pano/internal/mathx"
	"pano/internal/obs"
	"pano/internal/server"
)

// fastFetchPolicy keeps the ladder's timing cost negligible in tests.
func fastFetchPolicy() FetchPolicy {
	return FetchPolicy{
		MaxAttempts:       2,
		BaseBackoff:       time.Millisecond,
		MaxBackoff:        4 * time.Millisecond,
		JitterFrac:        0.5,
		AttemptTimeout:    2 * time.Second,
		MinAttemptTimeout: 50 * time.Millisecond,
		Seed:              7,
	}
}

// failFirstPerPath 500s the first request to each distinct tile path and
// delegates afterwards: every tile needs exactly one retry.
func failFirstPerPath(inner http.Handler) http.Handler {
	var mu sync.Mutex
	seen := map[string]bool{}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/video/") {
			mu.Lock()
			first := !seen[r.URL.Path]
			seen[r.URL.Path] = true
			mu.Unlock()
			if first {
				http.Error(w, "first attempt fails", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
}

func TestStreamRetryThenSucceed(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(failFirstPerPath(s.Handler()))
	defer ts.Close()

	res, err, reg, el := streamWithObs(t, ts.URL, context.Background(), StreamConfig{
		MaxChunks: 2, Fetch: fastFetchPolicy(),
	})
	if err != nil {
		t.Fatalf("retryable failures must not abort: %v", err)
	}
	if res.TotalRetries == 0 {
		t.Error("no retries recorded")
	}
	if res.DegradedTiles != 0 || res.SkippedTiles != 0 {
		t.Errorf("retry-then-succeed should not degrade (%d) or skip (%d)",
			res.DegradedTiles, res.SkippedTiles)
	}
	if status := summaryStatus(t, el); status != "ok" {
		t.Errorf("summary status %q, want ok", status)
	}
	if got := reg.CounterSum("pano_client_tile_retries_total"); got != float64(res.TotalRetries) {
		t.Errorf("retries counter %v, result has %d", got, res.TotalRetries)
	}
	// Satellite fix: retry events carry an error class, not a raw error
	// string, and the counter is labeled by the same class.
	if e, ok := el.Last("tile_retry"); !ok || e.Str("class") != "http_5xx" {
		t.Errorf("tile_retry event class = %q, want http_5xx", e.Str("class"))
	}
	if got := reg.CounterValue("pano_client_tile_retries_total",
		obs.L("class", "http_5xx")); got != float64(res.TotalRetries) {
		t.Errorf("class-labeled retries counter %v, result has %d", got, res.TotalRetries)
	}
}

func TestStreamDegradesToLowest(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	inner := s.Handler()
	lowest := codec.Level(codec.NumLevels - 1)
	// Only the lowest level is servable: every higher-level fetch must
	// walk the ladder down instead of aborting.
	onlyLowest := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/video/") {
			if _, _, l, perr := server.ParseTilePath(r.URL.Path); perr == nil && l != lowest {
				http.Error(w, "level unavailable", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer onlyLowest.Close()

	res, err, reg, el := streamWithObs(t, onlyLowest.URL, context.Background(), StreamConfig{
		MaxChunks: 2, Fetch: fastFetchPolicy(),
	})
	if err != nil {
		t.Fatalf("degradable failures must not abort: %v", err)
	}
	if res.SkippedTiles != 0 {
		t.Errorf("%d tiles skipped; the lowest rung was servable", res.SkippedTiles)
	}
	if res.DegradedTiles == 0 {
		t.Error("no tiles degraded although only the lowest level is servable")
	}
	for _, ch := range res.Chunks {
		for ti, l := range ch.Levels {
			if l != lowest {
				t.Fatalf("chunk %d tile %d delivered at level %v, want lowest", ch.Chunk, ti, l)
			}
		}
	}
	if status := summaryStatus(t, el); status != "tile_degraded" {
		t.Errorf("summary status %q, want tile_degraded", status)
	}
	if got := reg.CounterValue("pano_client_tiles_degraded_total"); got != float64(res.DegradedTiles) {
		t.Errorf("degraded counter %v, result has %d", got, res.DegradedTiles)
	}
}

func TestStreamSkipsOneTileAndContinues(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	inner := s.Handler()
	// Tile 0 is gone at every level; everything else is healthy.
	noTile0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/video/") {
			if _, ti, _, perr := server.ParseTilePath(r.URL.Path); perr == nil && ti == 0 {
				http.Error(w, "tile lost", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer noTile0.Close()

	const chunks = 2
	res, err, _, el := streamWithObs(t, noTile0.URL, context.Background(), StreamConfig{
		MaxChunks: chunks, Fetch: fastFetchPolicy(),
	})
	if err != nil {
		t.Fatalf("one dead tile must not abort the session: %v", err)
	}
	if res.SkippedTiles != chunks {
		t.Errorf("SkippedTiles = %d, want %d (tile 0 of each chunk)", res.SkippedTiles, chunks)
	}
	if len(res.Chunks) != chunks {
		t.Fatalf("session stopped early: %d chunks", len(res.Chunks))
	}
	for _, ch := range res.Chunks {
		if ch.Skipped != 1 {
			t.Errorf("chunk %d Skipped = %d, want 1", ch.Chunk, ch.Skipped)
		}
		if ch.Levels[0] != codec.Level(codec.NumLevels-1) {
			t.Errorf("chunk %d skipped tile reported level %v, want lowest", ch.Chunk, ch.Levels[0])
		}
	}
	if status := summaryStatus(t, el); status != "tile_skipped" {
		t.Errorf("summary status %q, want tile_skipped", status)
	}
	if e, ok := fixtureEventLog(el, "tile_skipped"); !ok || e.Str("error") == "" {
		t.Error("no tile_skipped event with an error recorded")
	}
}

// fixtureEventLog fetches the last event with the given message.
func fixtureEventLog(el *obs.EventLog, msg string) (obs.Event, bool) {
	return el.Last(msg)
}

func TestFetchResilientDeadlineExpiryMidBody(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	// Every tile body stalls far longer than the attempt deadline: each
	// attempt must be cut off by its own timeout, and the ladder must end
	// in a bounded-time skip rather than hanging.
	in := chaos.New(chaos.Profile{Seed: 5, Tile: chaos.Rule{StallRate: 1, StallFor: 2 * time.Second}})
	ts := httptest.NewServer(in.Wrap(s.Handler()))
	defer ts.Close()

	pol := fastFetchPolicy()
	pol.AttemptTimeout = 40 * time.Millisecond
	reg := obs.NewRegistry()
	ins := newFetchInstruments(reg)
	var el *obs.EventLog
	rng := mathx.NewRNG(1)

	t0 := time.Now()
	tf, err := fetchTileResilient(context.Background(), New(ts.URL), RealClock{}, 0, 0, 0,
		pol, 0, true, rng, ins, el.Session())
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatalf("deadline expiry must resolve to a skip, not an error: %v", err)
	}
	if !tf.skipped {
		t.Error("stalled tile was not skipped")
	}
	wantAttempts := 2 * pol.MaxAttempts // planned rung + lowest rung
	if tf.retries != wantAttempts {
		t.Errorf("retries = %d, want %d", tf.retries, wantAttempts)
	}
	if got := reg.HistogramCount("pano_client_tile_attempt_seconds"); got != uint64(wantAttempts) {
		t.Errorf("attempt histogram count %d, want %d", got, wantAttempts)
	}
	// 4 attempts x 40ms + small backoffs; nowhere near the 2s stall.
	if elapsed > time.Second {
		t.Errorf("ladder took %v; attempt deadlines are not firing", elapsed)
	}

	// A canceled session context propagates instead of degrading.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fetchTileResilient(ctx, New(ts.URL), RealClock{}, 0, 0, 0,
		pol, 0, true, rng, ins, el.Session()); err == nil {
		t.Error("canceled context must propagate an error")
	}
}

func TestThroughputExcludesRetryOverhead(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	inner := s.Handler()
	var mu sync.Mutex
	seen := map[string]bool{}
	// First attempt per tile burns 30ms and fails; the retry is instant.
	// Wall-clock download time inflates, measured throughput must not.
	slowFail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/video/") {
			mu.Lock()
			first := !seen[r.URL.Path]
			seen[r.URL.Path] = true
			mu.Unlock()
			if first {
				time.Sleep(30 * time.Millisecond)
				http.Error(w, "slow failure", http.StatusInternalServerError)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer slowFail.Close()

	res, err := New(slowFail.URL).Stream(context.Background(), fixture(t).tr, StreamConfig{
		MaxChunks: 1, Fetch: fastFetchPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := res.Chunks[0]
	if ch.Retries == 0 {
		t.Fatal("no retries happened; the test server is wrong")
	}
	wallBps := float64(ch.Bytes*8) / ch.Download.Seconds()
	if ch.Throughput <= wallBps {
		t.Errorf("throughput %v <= wall-clock rate %v: retry overhead poisoned the measurement",
			ch.Throughput, wallBps)
	}
}

func TestStreamChaosConcurrentStress(t *testing.T) {
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	in := chaos.New(chaos.Profile{
		Seed: 2019,
		Tile: chaos.Rule{ErrorRate: 0.2, Latency: 200 * time.Microsecond},
	}, chaos.WithObs(reg))
	ts := httptest.NewServer(in.Wrap(s.Handler()))
	defer ts.Close()

	const sessions = 8
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	results := make([]*StreamResult, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pol := fastFetchPolicy()
			pol.Seed = uint64(i + 1)
			results[i], errs[i] = New(ts.URL).Stream(context.Background(), fixture(t).tr,
				StreamConfig{MaxChunks: 2, Fetch: pol})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d aborted under chaos: %v", i, err)
		}
		if len(results[i].Chunks) != 2 {
			t.Errorf("session %d streamed %d chunks", i, len(results[i].Chunks))
		}
	}
	if got := reg.CounterValue("pano_chaos_injections_total",
		obs.L("endpoint", "tile"), obs.L("kind", "error")); got == 0 {
		t.Error("chaos injected nothing; the stress test exercised no failures")
	}
}

func TestChaosDisabledByteIdentical(t *testing.T) {
	f := fixture(t)
	s, err := server.New(f.man)
	if err != nil {
		t.Fatal(err)
	}
	direct := httptest.NewServer(s.Handler())
	defer direct.Close()
	wrapped := httptest.NewServer(chaos.New(chaos.Profile{}).Wrap(s.Handler()))
	defer wrapped.Close()

	// Cap the controller's bandwidth input so decisions don't depend on
	// noisy loopback throughput: the two sessions must then make the
	// exact same level choices and download the exact same bytes.
	cfg := StreamConfig{MaxRateBps: 0.35 * topRate(f.man), Fetch: FetchPolicy{Seed: 1}}
	a, err := New(direct.URL).Stream(context.Background(), f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(wrapped.URL).Stream(context.Background(), f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRetries != 0 || b.TotalRetries != 0 || b.DegradedTiles != 0 || b.SkippedTiles != 0 {
		t.Fatalf("healthy sessions recorded failures: %+v vs %+v", a, b)
	}
	if len(a.Chunks) != len(b.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a.Chunks), len(b.Chunks))
	}
	for i := range a.Chunks {
		ca, cb := a.Chunks[i], b.Chunks[i]
		if ca.Bytes != cb.Bytes {
			t.Errorf("chunk %d bytes %d vs %d", i, ca.Bytes, cb.Bytes)
		}
		for ti := range ca.Levels {
			if ca.Levels[ti] != cb.Levels[ti] {
				t.Errorf("chunk %d tile %d level %v vs %v", i, ti, ca.Levels[ti], cb.Levels[ti])
			}
		}
	}
	if a.TotalBytes != b.TotalBytes {
		t.Errorf("total bytes %d vs %d", a.TotalBytes, b.TotalBytes)
	}
}
