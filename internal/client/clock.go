package client

import (
	"context"
	"time"
)

// Clock abstracts every way the session loop observes or spends time,
// so the same loop runs against the wall clock (real HTTP sessions) or
// a virtual clock (internal/swarm's discrete-event engine). The loop
// never calls time.Now/time.Since/context.WithTimeout directly — a
// rule enforced by the clock-audit tests in this package.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
	// Sleep waits for d (or until ctx is done, returning ctx.Err()).
	// A virtual clock advances instead of blocking.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context that expires after d on this
	// clock. The real clock is context.WithTimeout; virtual clocks
	// install a logical deadline their transport honours.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// wallNow is the real clock's time source. It is a variable so the
// clock-audit test can replace it with a panicking reader and prove
// the session loop never touches the wall clock when a virtual Clock
// is injected.
var wallNow = time.Now

// RealClock is the wall-clock Clock every HTTP session uses (the
// default when StreamConfig.Clock is nil).
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return wallNow() }

// Since implements Clock.
func (RealClock) Since(t time.Time) time.Duration { return wallNow().Sub(t) }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error { return sleepCtx(ctx, d) }

// WithTimeout implements Clock.
func (RealClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// sleepCtx waits d or until ctx is done, returning ctx.Err() in the
// latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
