package client

import (
	"context"
	"log/slog"
	"time"

	"pano/internal/manifest"
	"pano/internal/obs"
)

// LivePolicy tunes live-edge behaviour; it is only consulted when the
// manifest announces itself live (manifest.Video.Live). The zero value
// selects defaults derived from the chunk duration.
type LivePolicy struct {
	// PollInterval is the manifest refresh cadence while the session is
	// blocked at the live edge (default: half a chunk duration, matching
	// the origin's live manifest max-age).
	PollInterval time.Duration
	// MaxLatencyChunks is the live rebuffer policy: when the playhead
	// falls further than this many chunks behind the edge (a stall, or
	// rejoining after falling out of the availability window), the
	// session skips forward to the newest published chunk instead of
	// draining the backlog (default 4).
	MaxLatencyChunks int
	// EdgeTimeout bounds how long the session waits at the edge without
	// the manifest growing before concluding the feed died; the session
	// then ends cleanly rather than erroring (default 30 chunk
	// durations).
	EdgeTimeout time.Duration
}

func (p LivePolicy) withDefaults(chunkSec float64) LivePolicy {
	chunk := time.Duration(chunkSec * float64(time.Second))
	if p.PollInterval <= 0 {
		p.PollInterval = chunk / 2
	}
	if p.PollInterval <= 0 {
		p.PollInterval = 100 * time.Millisecond
	}
	if p.MaxLatencyChunks <= 0 {
		p.MaxLatencyChunks = 4
	}
	if p.EdgeTimeout <= 0 {
		p.EdgeTimeout = 30 * chunk
		if p.EdgeTimeout <= 0 {
			p.EdgeTimeout = 30 * time.Second
		}
	}
	return p
}

// liveSyncResult is what one edge synchronisation resolves to.
type liveSyncResult struct {
	m     *manifest.Video
	k     int
	ended bool
}

// liveEdgeSync blocks until chunk k is streamable against a live
// manifest: it skips forward when k fell out of the availability window
// or too far behind the edge, and while k is AT the edge it polls the
// manifest — the client never schedules a fetch past the edge, the
// refresh is how it learns the edge moved. Waiting drains the playout
// buffer like real playback would; once the buffer runs dry the
// remainder of the wait is a stall (counted as rebuffering, bounded by
// pol.EdgeTimeout + the skip policy rather than unbounded).
//
// Only ctx cancellation returns an error; a dead feed or an
// out-of-reach manifest ends the session cleanly (ended=true), never
// aborts it.
func liveEdgeSync(ctx context.Context, tp Transport, clk Clock, m *manifest.Video, k int,
	pol LivePolicy, buffer *float64, res *StreamResult, reg *obs.Registry,
	rebufTotal *obs.Counter, sess *slog.Logger) (liveSyncResult, error) {

	var waited time.Duration
	blocked := false
	for {
		// Behind the availability window: the origin would answer 410 for
		// every tile of k. Skip to the window start (at minimum).
		if k < m.FirstChunk {
			res.LiveSkippedChunks += m.FirstChunk - k
			reg.Counter("pano_client_live_skips_total",
				"chunks skipped by the live catch-up policy").Add(float64(m.FirstChunk - k))
			sess.Info("live_skip", "reason", "window_expired", "from", k, "to", m.FirstChunk)
			k = m.FirstChunk
		}
		if edge := m.NumChunks(); k < edge {
			// Too far behind the edge: skip to the newest published chunk
			// instead of draining a backlog that keeps growing.
			if edge-k > pol.MaxLatencyChunks {
				to := edge - 1
				res.LiveSkippedChunks += to - k
				reg.Counter("pano_client_live_skips_total",
					"chunks skipped by the live catch-up policy").Add(float64(to - k))
				sess.Info("live_skip", "reason", "latency", "from", k, "to", to)
				k = to
			}
			return liveSyncResult{m: m, k: k}, nil
		}
		if !m.Live {
			// Feed ended and k is past the final chunk: end of session.
			return liveSyncResult{m: m, k: k, ended: true}, nil
		}
		if waited >= pol.EdgeTimeout {
			sess.Warn("live_edge_timeout", "chunk", k, "waited_sec", waited.Seconds())
			reg.Counter("pano_client_live_edge_timeouts_total",
				"sessions that gave up waiting for the live edge to move").Inc()
			return liveSyncResult{m: m, k: k, ended: true}, nil
		}
		if !blocked {
			blocked = true
			res.LiveEdgeWaits++
		}
		d := pol.PollInterval
		if err := clk.Sleep(ctx, d); err != nil {
			return liveSyncResult{}, err
		}
		waited += d
		res.LiveEdgeWaitSec += d.Seconds()
		reg.Counter("pano_client_live_edge_wait_seconds_total",
			"seconds spent blocked at the live edge").Add(d.Seconds())
		// Playback continues while we wait: drain the buffer, and count
		// the dry remainder as a stall.
		ds := d.Seconds()
		if *buffer >= ds {
			*buffer -= ds
		} else {
			stall := ds - *buffer
			*buffer = 0
			res.RebufferSec += stall
			rebufTotal.Add(stall)
		}
		m2, err := tp.Manifest(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return liveSyncResult{}, ctx.Err()
			}
			// Transient refresh failure: keep the old manifest, retry
			// until EdgeTimeout. Refresh errors never abort a session.
			sess.Debug("live_refresh_error", "error", err.Error())
			continue
		}
		// Monotonicity: never adopt a refresh whose edge or sequence went
		// backwards (e.g. a lagging origin behind a different edge cache).
		if m2.NumChunks() >= m.NumChunks() && m2.Seq >= m.Seq {
			if m2.NumChunks() > m.NumChunks() {
				waited = 0 // the edge moved; restart the death watch
			}
			m = m2
		}
	}
}
