package client

import (
	"context"

	"pano/internal/codec"
	"pano/internal/manifest"
)

// Transport abstracts object delivery for the session loop: the HTTP
// client is one implementation (paired with RealClock), and
// internal/swarm's logical network — a nettrace link plus chaos fault
// draws in virtual time — is another. Everything the loop learns about
// the network (sizes, errors, elapsed time via the Clock) flows
// through this interface, so the loop itself is transport-agnostic.
type Transport interface {
	// Target names the endpoint for logs and spans (the base URL for
	// HTTP transports).
	Target() string
	// Manifest fetches and validates the video manifest.
	Manifest(ctx context.Context) (*manifest.Video, error)
	// Tile fetches one tile object at the given level and returns the
	// delivered payload size in bits. Implementations must honour ctx,
	// including deadlines installed by the session Clock's WithTimeout,
	// and should classify failures like the HTTP transport does
	// (StatusError for server answers, context.DeadlineExceeded for
	// expiry) so the retry ladder treats both transports identically.
	Tile(ctx context.Context, k, ti int, l codec.Level) (float64, error)
}

// Target implements Transport.
func (c *Client) Target() string { return c.BaseURL }

// Manifest implements Transport.
func (c *Client) Manifest(ctx context.Context) (*manifest.Video, error) {
	return c.FetchManifest(ctx)
}

// Tile implements Transport: FetchTile plus the bits accounting the
// session loop needs.
func (c *Client) Tile(ctx context.Context, k, ti int, l codec.Level) (float64, error) {
	data, err := c.FetchTile(ctx, k, ti, l)
	return float64(len(data) * 8), err
}
