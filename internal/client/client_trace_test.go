package client

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"pano/internal/chaos"
	"pano/internal/server"
	"pano/internal/trace"
)

// tracedChaosServer builds the acceptance topology: trace middleware
// OUTSIDE the chaos injector, so injected faults annotate the handler
// spans they corrupt.
func tracedChaosServer(t *testing.T, tracer *trace.Tracer, spec string) *httptest.Server {
	t.Helper()
	s, err := server.New(fixture(t).man, server.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	var h = s.Handler()
	if spec != "" {
		prof, err := chaos.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		h = chaos.New(prof).Wrap(h)
	}
	ts := httptest.NewServer(trace.Middleware(tracer, h))
	t.Cleanup(ts.Close)
	return ts
}

func TestStreamTraceStitchesAcrossRetries(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 3})
	ts := tracedChaosServer(t, tracer, "seed=7,tile-error=0.25")

	res, err := New(ts.URL).Stream(context.Background(), fixture(t).tr, StreamConfig{
		Fetch: fastFetchPolicy(),
		Trace: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("traced session reported no trace ID")
	}
	if res.TotalRetries == 0 {
		t.Fatal("chaos injected no retries; the stitching assertions below are vacuous")
	}

	var td *trace.TraceData
	for _, tr := range tracer.Traces() {
		if tr.ID.String() == res.TraceID {
			td = tr
		}
	}
	if td == nil {
		t.Fatalf("trace %s not in the store", res.TraceID)
	}
	root := td.Root()
	if root == nil || root.Name != "session" {
		t.Fatalf("trace root = %+v, want session span", root)
	}
	if got := len(td.Find("chunk")); got != len(res.Chunks) {
		t.Errorf("chunk spans = %d, want %d", got, len(res.Chunks))
	}

	// Every server handler span must stitch into THIS trace, parented to
	// the client span whose request it served (an attempt span for tiles,
	// the session span for the manifest).
	byID := map[trace.SpanID]*trace.SpanData{}
	for i := range td.Spans {
		byID[td.Spans[i].ID] = &td.Spans[i]
	}
	reqs := td.Find("http_request")
	if len(reqs) == 0 {
		t.Fatal("no server spans stitched into the client trace")
	}
	var chaosFaults, faultedAttempts int
	for _, sd := range reqs {
		parent, ok := byID[sd.Parent]
		if !ok {
			t.Fatalf("server span %s parented to unknown span %s", sd.ID, sd.Parent)
		}
		if parent.Name != "attempt" && parent.Name != "session" {
			t.Errorf("server span parented to %q span, want attempt or session", parent.Name)
		}
		if sd.Attr("chaos.error") == nil {
			continue
		}
		chaosFaults++
		// The fault must land on the handler span of the attempt that
		// failed: that attempt recorded the matching error class.
		if parent.Name != "attempt" {
			t.Errorf("chaos fault annotated a %q-parented span, want attempt", parent.Name)
		} else if parent.Err != "http_5xx" {
			t.Errorf("faulted attempt span has class %q, want http_5xx", parent.Err)
		} else {
			faultedAttempts++
		}
	}
	if chaosFaults == 0 {
		t.Error("no handler span carries a chaos fault annotation")
	}
	if faultedAttempts != chaosFaults {
		t.Errorf("faulted attempts = %d, chaos faults = %d", faultedAttempts, chaosFaults)
	}
	// Retries recorded on spans agree with the session result: every tile
	// gets one attempt span per failure (a retry) plus one for its
	// success — except skipped tiles, which never succeed.
	want := res.TotalRetries + len(td.Find("tile_fetch")) - res.SkippedTiles
	if got := len(td.Find("attempt")); got != want {
		t.Errorf("attempt spans = %d, want %d (%d retries, %d skipped)",
			got, want, res.TotalRetries, res.SkippedTiles)
	}
}

func TestStreamTraceConcurrentSessions(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 5, MaxTraces: 16})
	ts := tracedChaosServer(t, tracer, "seed=7,tile-error=0.1")

	const n = 4
	var wg sync.WaitGroup
	results := make([]*StreamResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pol := fastFetchPolicy()
			pol.Seed = uint64(i + 1)
			results[i], errs[i] = New(ts.URL).Stream(context.Background(), fixture(t).tr,
				StreamConfig{MaxChunks: 2, Fetch: pol, Trace: tracer})
		}(i)
	}
	wg.Wait()

	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		id := results[i].TraceID
		if id == "" || seen[id] {
			t.Fatalf("session %d trace ID %q (empty or duplicate)", i, id)
		}
		seen[id] = true
	}
	// All four sessions finished as distinct, complete traces.
	var found int
	for _, td := range tracer.Traces() {
		if seen[td.ID.String()] {
			found++
			if td.Root() == nil {
				t.Errorf("trace %s has no root span", td.ID)
			}
		}
	}
	if found != n {
		t.Errorf("complete traces = %d, want %d", found, n)
	}
}

// A nil tracer must not perturb streaming: same level decisions, same
// bytes, byte for byte, as a traced session over the same server.
func TestNilTracerByteIdentical(t *testing.T) {
	f := fixture(t)
	s, err := server.New(f.man)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cap the controller's bandwidth input so decisions don't depend on
	// noisy loopback throughput (same trick as the chaos suite).
	cfg := StreamConfig{MaxRateBps: 0.35 * topRate(f.man), Fetch: FetchPolicy{Seed: 1}}
	plain, err := New(ts.URL).Stream(context.Background(), f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceID != "" {
		t.Errorf("untraced session reported trace ID %q", plain.TraceID)
	}

	cfg.Trace = trace.New(trace.Config{Seed: 9})
	traced, err := New(ts.URL).Stream(context.Background(), f.tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if traced.TraceID == "" {
		t.Error("traced session reported no trace ID")
	}

	if len(plain.Chunks) != len(traced.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(plain.Chunks), len(traced.Chunks))
	}
	for i := range plain.Chunks {
		ca, cb := plain.Chunks[i], traced.Chunks[i]
		if ca.Bytes != cb.Bytes {
			t.Errorf("chunk %d bytes %d vs %d", i, ca.Bytes, cb.Bytes)
		}
		for ti := range ca.Levels {
			if ca.Levels[ti] != cb.Levels[ti] {
				t.Errorf("chunk %d tile %d level %v vs %v", i, ti, ca.Levels[ti], cb.Levels[ti])
			}
		}
	}
	if plain.TotalBytes != traced.TotalBytes {
		t.Errorf("total bytes %d vs %d", plain.TotalBytes, traced.TotalBytes)
	}
}

// Overhead of the nil (disabled) tracer vs a sampling tracer on a real
// streaming session; the per-span cost itself is benchmarked in
// internal/trace.
func benchmarkStream(b *testing.B, tracer *trace.Tracer) {
	f := fixture(b)
	s, err := server.New(f.man)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cfg := StreamConfig{
		MaxRateBps: 0.35 * topRate(f.man),
		MaxChunks:  1,
		Fetch:      FetchPolicy{Seed: 1},
		Trace:      tracer,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ts.URL).Stream(context.Background(), f.tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamNilTracer(b *testing.B) { benchmarkStream(b, nil) }

func BenchmarkStreamTraced(b *testing.B) {
	benchmarkStream(b, trace.New(trace.Config{Seed: 1, MaxTraces: 4}))
}
