package client

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/manifest"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/viewport"
)

type fixtureT struct {
	man *manifest.Video
	tr  *viewport.Trace
}

var (
	fxOnce sync.Once
	fx     fixtureT
)

func fixture(t testing.TB) *fixtureT {
	t.Helper()
	fxOnce.Do(func() {
		v := scene.Generate(scene.Tourism, 41, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 3})
		tr := viewport.Synthesize(v, 2, viewport.DefaultSynthesizeOpts())
		m, err := provider.Preprocess(v, []*viewport.Trace{tr}, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fx = fixtureT{man: m, tr: tr}
	})
	return &fx
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(fixture(t).man)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestFetchManifest(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL)
	m, err := c.FetchManifest(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumChunks() != fixture(t).man.NumChunks() {
		t.Error("manifest mismatch")
	}
}

func TestFetchManifestBadServer(t *testing.T) {
	c := New("http://127.0.0.1:1") // nothing listens
	if _, err := c.FetchManifest(context.Background()); err == nil {
		t.Error("unreachable server should error")
	}
}

func TestFetchTileVerifiesHeader(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL)
	data, err := c.FetchTile(context.Background(), 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := server.TileSizeBytes(&fixture(t).man.Chunks[0].Tiles[1], 2)
	if len(data) != want && len(data) != 16 {
		t.Errorf("tile size %d, want %d", len(data), want)
	}
	if _, err := c.FetchTile(context.Background(), 0, 9999, 2); err == nil {
		t.Error("missing tile should error")
	}
}

func TestStreamEndToEnd(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL)
	f := fixture(t)
	res, err := c.Stream(context.Background(), f.tr, StreamConfig{Planner: player.NewPanoPlanner()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != f.man.NumChunks() {
		t.Fatalf("streamed %d chunks, want %d", len(res.Chunks), f.man.NumChunks())
	}
	if res.TotalBytes <= 0 {
		t.Error("no bytes streamed")
	}
	if res.StartupDelay <= 0 {
		t.Error("no startup delay recorded")
	}
	for _, ch := range res.Chunks {
		if len(ch.Levels) != len(f.man.Chunks[ch.Chunk].Tiles) {
			t.Fatalf("chunk %d: %d levels", ch.Chunk, len(ch.Levels))
		}
		if ch.Throughput <= 0 {
			t.Errorf("chunk %d: throughput %v", ch.Chunk, ch.Throughput)
		}
	}
}

func TestStreamMaxChunks(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL)
	res, err := c.Stream(context.Background(), fixture(t).tr, StreamConfig{MaxChunks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 1 {
		t.Errorf("chunks = %d, want 1", len(res.Chunks))
	}
}

func TestStreamRateCapConstrainsQuality(t *testing.T) {
	ts := testServer(t)
	f := fixture(t)
	// Uncapped loopback saturates at the top level; a tight cap must
	// push the controller to cheaper levels.
	capped, err := New(ts.URL).Stream(context.Background(), f.tr, StreamConfig{
		MaxRateBps: 0.15 * topRate(f.man),
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := New(ts.URL).Stream(context.Background(), f.tr, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if capped.TotalBytes >= free.TotalBytes {
		t.Errorf("capped session bytes %d should be below uncapped %d",
			capped.TotalBytes, free.TotalBytes)
	}
}

func topRate(m *manifest.Video) float64 {
	var bits float64
	for k := 0; k < m.NumChunks(); k++ {
		bits += m.ChunkBits(k, 0)
	}
	return bits / m.DurationSec()
}

func TestStreamCancellation(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Stream(ctx, fixture(t).tr, StreamConfig{}); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestStitch(t *testing.T) {
	f := fixture(t)
	m := f.man
	dst := frame.New(m.W, m.H)
	tiles := map[int]*frame.Frame{}
	for ti, tl := range m.Chunks[0].Tiles {
		tf := frame.New(tl.Rect.W(), tl.Rect.H())
		tf.Fill(uint8(40 + 5*ti))
		tiles[ti] = tf
	}
	if err := Stitch(m, 0, tiles, dst); err != nil {
		t.Fatal(err)
	}
	// Every tile's region carries its fill value.
	for ti, tl := range m.Chunks[0].Tiles {
		if got := dst.At(tl.Rect.X0, tl.Rect.Y0); got != uint8(40+5*ti) {
			t.Fatalf("tile %d region has %d", ti, got)
		}
	}
}

func TestStitchErrors(t *testing.T) {
	f := fixture(t)
	m := f.man
	dst := frame.New(m.W, m.H)
	if err := Stitch(m, 99, nil, dst); err == nil {
		t.Error("bad chunk should error")
	}
	if err := Stitch(m, 0, map[int]*frame.Frame{999: frame.New(2, 2)}, dst); err == nil {
		t.Error("bad tile index should error")
	}
	if err := Stitch(m, 0, map[int]*frame.Frame{0: frame.New(1, 1)}, dst); err == nil {
		t.Error("mis-sized tile should error")
	}
	if err := Stitch(m, 0, nil, frame.New(3, 3)); err == nil {
		t.Error("mis-sized target should error")
	}
}

func TestLevelsWithinRange(t *testing.T) {
	ts := testServer(t)
	c := New(ts.URL)
	res, err := c.Stream(context.Background(), fixture(t).tr, StreamConfig{BufferTargetSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range res.Chunks {
		for _, l := range ch.Levels {
			if !l.Valid() {
				t.Fatalf("invalid level %v", l)
			}
		}
	}
	_ = codec.NumLevels
}
