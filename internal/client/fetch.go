package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"syscall"
	"time"

	"pano/internal/codec"
	"pano/internal/mathx"
	"pano/internal/obs"
	"pano/internal/trace"
)

// StatusError reports a non-200 response from the server. 5xx responses
// are retryable (a flaky origin); 4xx are not (the request itself is
// wrong) and push the fetch ladder straight to its next rung.
type StatusError struct {
	Code int
}

// Error implements error.
func (e *StatusError) Error() string { return fmt.Sprintf("HTTP %d", e.Code) }

// FetchPolicy tunes the resilient tile-fetch pipeline: per-attempt
// deadlines derived from buffer occupancy, capped jittered exponential
// backoff, and the per-tile degradation ladder (retry at the planned
// level → re-fetch at the lowest level → skip the tile and stitch at
// previous content, §7). The zero value selects the defaults below, so
// existing callers get resilience without configuration.
type FetchPolicy struct {
	// MaxAttempts bounds attempts per ladder rung (default 3): a tile
	// sees at most 2*MaxAttempts requests before it is skipped.
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 50ms); each retry
	// doubles it up to MaxBackoff (default 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac randomizes each backoff within ±JitterFrac/2 of itself
	// (default 0.5) so synchronized clients don't retry in lockstep.
	JitterFrac float64
	// AttemptTimeout caps one attempt (default 5s). MinAttemptTimeout
	// (default 100ms) floors the buffer-derived deadline so progress is
	// always possible even with an empty buffer.
	AttemptTimeout    time.Duration
	MinAttemptTimeout time.Duration
	// Seed drives the backoff jitter (deterministic for tests/benches).
	Seed uint64

	// Hedging applies when fetching through a multi-origin fleet
	// (internal/fleet); a single origin never hedges. HedgeDelay is the
	// wait before a backup request goes to the next ring replica: 0
	// selects an adaptive delay tracking the observed p95 fetch latency,
	// a negative value disables hedging.
	HedgeDelay time.Duration
	// HedgeMinDelay/HedgeMaxDelay clamp the adaptive delay (defaults
	// 10ms and 1s) so a cold latency tracker neither hedges instantly
	// nor never.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeBudgetRatio is the token-bucket earn rate guarding hedges and
	// failover retries: each primary request earns this many tokens and
	// each hedge or failover spends one (default 0.1 — at most ~10%
	// extra origin load, so shard loss never becomes a retry storm).
	// HedgeBudgetBurst caps the bucket (default 8).
	HedgeBudgetRatio float64
	HedgeBudgetBurst float64
}

// DefaultFetchPolicy returns the default resilient policy.
func DefaultFetchPolicy() FetchPolicy {
	return FetchPolicy{
		MaxAttempts:       3,
		BaseBackoff:       50 * time.Millisecond,
		MaxBackoff:        time.Second,
		JitterFrac:        0.5,
		AttemptTimeout:    5 * time.Second,
		MinAttemptTimeout: 100 * time.Millisecond,
		HedgeMinDelay:     10 * time.Millisecond,
		HedgeMaxDelay:     time.Second,
		HedgeBudgetRatio:  0.1,
		HedgeBudgetBurst:  8,
	}
}

// withDefaults fills zero fields from DefaultFetchPolicy.
func (p FetchPolicy) withDefaults() FetchPolicy {
	d := DefaultFetchPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = d.JitterFrac
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = d.AttemptTimeout
	}
	if p.MinAttemptTimeout <= 0 {
		p.MinAttemptTimeout = d.MinAttemptTimeout
	}
	if p.HedgeMinDelay <= 0 {
		p.HedgeMinDelay = d.HedgeMinDelay
	}
	if p.HedgeMaxDelay <= 0 {
		p.HedgeMaxDelay = d.HedgeMaxDelay
	}
	if p.HedgeBudgetRatio <= 0 {
		p.HedgeBudgetRatio = d.HedgeBudgetRatio
	}
	if p.HedgeBudgetBurst <= 0 {
		p.HedgeBudgetBurst = d.HedgeBudgetBurst
	}
	return p
}

// WithDefaults returns the policy with zero fields filled from
// DefaultFetchPolicy — the same normalization every fetch entry point
// applies, exported so the fleet layer resolves hedge tuning
// identically.
func (p FetchPolicy) WithDefaults() FetchPolicy { return p.withDefaults() }

// HedgingEnabled reports whether the policy allows hedged fetches
// (negative HedgeDelay turns them off).
func (p FetchPolicy) HedgingEnabled() bool { return p.HedgeDelay >= 0 }

// attemptTimeout derives the per-attempt deadline from buffer
// occupancy: each attempt may spend at most half the remaining playback
// buffer, floored at MinAttemptTimeout and capped at AttemptTimeout.
// During startup (nothing is playing yet) the full AttemptTimeout
// applies.
func (p FetchPolicy) attemptTimeout(bufferSec float64, startup bool) time.Duration {
	if startup {
		return p.AttemptTimeout
	}
	t := time.Duration(bufferSec / 2 * float64(time.Second))
	if t < p.MinAttemptTimeout {
		return p.MinAttemptTimeout
	}
	if t > p.AttemptTimeout {
		return p.AttemptTimeout
	}
	return t
}

// backoff returns the jittered delay before retry number attempt
// (0-based).
func (p FetchPolicy) backoff(attempt int, rng *mathx.RNG) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.JitterFrac > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 - p.JitterFrac/2 + p.JitterFrac*rng.Float64()))
	}
	return d
}

// Backoff returns the jittered delay before retry number attempt
// (0-based) — the exported form of the ladder's backoff, so the fleet
// layer paces its failover rounds identically.
func (p FetchPolicy) Backoff(attempt int, rng *mathx.RNG) time.Duration {
	return p.backoff(attempt, rng)
}

// ErrorClass buckets a fetch error into the pipeline's low-cardinality
// class names (see errorClass) for metrics shared across packages.
func ErrorClass(err error) string { return errorClass(err) }

// retryable classifies a fetch error: 4xx server answers are final for
// this rung; everything else (5xx, transport errors, truncated or
// corrupt bodies, attempt deadline expiry) is worth retrying.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// errorClass buckets a fetch error into a low-cardinality class, so
// retry events and counters aggregate cleanly under chaos instead of
// exploding into raw error strings:
//
//	timeout    — the attempt deadline expired (or the transport timed out)
//	http_5xx   — a retryable server answer
//	http_4xx   — a final server answer (the request itself is wrong)
//	conn_reset — the connection died (reset, refused, broken pipe, EOF)
//	truncated  — a short or corrupt body (length/header mismatch)
//	other      — anything else
func errorClass(err error) string {
	if err == nil {
		return ""
	}
	var se *StatusError
	if errors.As(err, &se) {
		if se.Code >= 500 {
			return "http_5xx"
		}
		return "http_4xx"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return "timeout"
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "timeout"
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return "truncated"
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, io.EOF) {
		return "conn_reset"
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "short object") || strings.Contains(msg, "header chunk mismatch") ||
		strings.Contains(msg, "header tile mismatch"):
		return "truncated"
	case strings.Contains(msg, "connection reset") || strings.Contains(msg, "broken pipe") ||
		strings.Contains(msg, "EOF"):
		return "conn_reset"
	case strings.Contains(msg, "timeout") || strings.Contains(msg, "deadline"):
		return "timeout"
	}
	return "other"
}

// fetchInstruments are the per-session obs handles of the resilient
// pipeline (all nil-safe).
type fetchInstruments struct {
	reg      *obs.Registry
	attempts *obs.Histogram // pano_client_tile_attempt_seconds
	degraded *obs.Counter   // pano_client_tiles_degraded_total
	skipped  *obs.Counter   // pano_client_tiles_skipped_total
}

func newFetchInstruments(reg *obs.Registry) fetchInstruments {
	return fetchInstruments{
		reg: reg,
		attempts: reg.Histogram("pano_client_tile_attempt_seconds",
			"per-attempt tile download latency (including failed attempts)", nil),
		degraded: reg.Counter("pano_client_tiles_degraded_total",
			"tiles delivered at the lowest level after planned-level failures"),
		skipped: reg.Counter("pano_client_tiles_skipped_total",
			"tiles abandoned after the full degradation ladder"),
	}
}

// retry counts one failed attempt under its error class, so chaos runs
// aggregate by failure mode instead of raw error strings.
func (ins fetchInstruments) retry(class string) {
	ins.reg.Counter("pano_client_tile_retries_total",
		"failed tile fetch attempts that were retried or degraded, by error class",
		obs.L("class", class)).Inc()
}

// tileFetch is the outcome of the degradation ladder for one tile.
type tileFetch struct {
	bits     float64
	level    codec.Level
	retries  int
	degraded bool
	skipped  bool
	// goodput is the duration of the successful attempt only, so
	// throughput accounting excludes retry overhead and the bandwidth
	// predictor is not poisoned by failures.
	goodput time.Duration
}

// fetchTileResilient runs the §7 degradation ladder for one tile:
// bounded retries with jittered backoff at the planned level, then at
// the lowest level, then a skip. It returns an error only when the
// session context itself is canceled; every server-side failure mode
// resolves to a degraded or skipped outcome so the session continues.
//
// When ctx carries a trace span, the tile gets a "tile_fetch" child
// span and every attempt its own "attempt" span — annotated with the
// ladder rung, the buffer-derived deadline, the backoff that follows a
// failure, and the failure's error class — so a late chunk decomposes
// into exactly which attempt stalled and why.
func fetchTileResilient(ctx context.Context, tp Transport, clk Clock, k, ti int, planned codec.Level,
	pol FetchPolicy, bufferSec float64, startup bool, rng *mathx.RNG,
	ins fetchInstruments, sess *slog.Logger) (outF tileFetch, outErr error) {

	ctx, tspan := trace.StartSpan(ctx, "tile_fetch",
		trace.A("tile", ti), trace.A("planned_level", int(planned)))
	defer func() {
		tspan.Annotate("retries", outF.retries)
		tspan.Annotate("level", int(outF.level))
		switch {
		case outErr != nil:
			tspan.SetError("canceled")
		case outF.skipped:
			tspan.Annotate("outcome", "skipped")
		case outF.degraded:
			tspan.Annotate("outcome", "degraded")
		default:
			tspan.Annotate("outcome", "ok")
		}
		tspan.End()
	}()

	out := tileFetch{level: planned}
	lowest := codec.Level(codec.NumLevels - 1)
	rungs := []codec.Level{planned}
	if planned != lowest {
		rungs = append(rungs, lowest)
	}
	var lastErr error
	for ri, lv := range rungs {
		for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
			timeout := pol.attemptTimeout(bufferSec, startup)
			actx, aspan := trace.StartSpan(ctx, "attempt",
				trace.A("attempt", attempt+1), trace.A("rung", ri), trace.A("level", int(lv)),
				trace.A("deadline_sec", timeout.Seconds()))
			actx, cancel := clk.WithTimeout(actx, timeout)
			t0 := clk.Now()
			bits, err := tp.Tile(actx, k, ti, lv)
			d := clk.Since(t0)
			cancel()
			ins.attempts.ObserveExemplar(d.Seconds(), aspan.TraceHex())
			if err == nil {
				aspan.End()
				out.bits, out.level, out.goodput = bits, lv, d
				if ri > 0 {
					out.degraded = true
					ins.degraded.Inc()
					sess.Warn("tile_degraded",
						"chunk", k, "tile", ti, "planned_level", int(planned),
						"level", int(lv), "retries", out.retries)
				}
				return out, nil
			}
			class := errorClass(err)
			aspan.SetError(class)
			if ctx.Err() != nil {
				// The session itself was canceled (or hit its overall
				// deadline): propagate instead of degrading.
				aspan.End()
				return out, err
			}
			lastErr = err
			out.retries++
			ins.retry(class)
			sess.Debug("tile_retry",
				"chunk", k, "tile", ti, "level", int(lv), "attempt", attempt+1,
				"timeout_sec", timeout.Seconds(), "class", class)
			if !retryable(err) {
				aspan.End()
				break // this rung is hopeless; drop a level
			}
			var backoff time.Duration
			if attempt < pol.MaxAttempts-1 {
				backoff = pol.backoff(attempt, rng)
				aspan.Annotate("backoff_sec", backoff.Seconds())
			}
			aspan.End()
			if backoff > 0 {
				if err := clk.Sleep(ctx, backoff); err != nil {
					return out, err
				}
			}
		}
	}
	out.skipped = true
	ins.skipped.Inc()
	sess.Warn("tile_skipped",
		"chunk", k, "tile", ti, "planned_level", int(planned),
		"retries", out.retries, "class", errorClass(lastErr), "error", errString(lastErr))
	return out, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
