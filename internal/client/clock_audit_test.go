package client

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pano/internal/codec"
	"pano/internal/manifest"
)

// auditClock is a minimal virtual clock for the wall-clock audit: it
// advances only when the session sleeps and installs no real deadlines.
type auditClock struct {
	off time.Duration
}

func (c *auditClock) Now() time.Time                  { return time.Unix(0, 0).UTC().Add(c.off) }
func (c *auditClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
func (c *auditClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.off += d
	}
	return nil
}
func (c *auditClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return ctx, func() {}
}

// auditTransport serves the fixture manifest without a network, ticking
// the injected clock so durations stay positive.
type auditTransport struct {
	t   testing.TB
	clk *auditClock
}

func (a auditTransport) Target() string { return "audit://fake" }

func (a auditTransport) Manifest(ctx context.Context) (*manifest.Video, error) {
	return fixture(a.t).man, nil
}

func (a auditTransport) Tile(ctx context.Context, k, ti int, l codec.Level) (float64, error) {
	a.clk.off += time.Millisecond
	return fixture(a.t).man.Chunks[k].Tiles[ti].Bits[l], nil
}

// TestSessionNeverReadsWallClock replaces the real clock's time source
// with a panicking reader and runs a full session against a virtual
// clock and transport: any stray wall-clock read inside the extracted
// loop (or anything it calls with Obs/Log/Trace disabled) panics the
// test.
func TestSessionNeverReadsWallClock(t *testing.T) {
	orig := wallNow
	wallNow = func() time.Time { panic("session loop read the wall clock") }
	defer func() { wallNow = orig }()

	clk := &auditClock{}
	res, err := RunSession(context.Background(), auditTransport{t: t, clk: clk}, fixture(t).tr, StreamConfig{
		Clock:        clk,
		MaxBufferSec: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != fixture(t).man.NumChunks() {
		t.Fatalf("streamed %d chunks", len(res.Chunks))
	}
	if clk.off <= 0 {
		t.Fatal("virtual clock never advanced")
	}
}

// TestNoWallClockCallsInSource scans the package source for direct
// wall-clock or real-deadline calls. Only clock.go (the RealClock
// implementation — the one place the wall clock belongs) and raw.go
// (the edge tier's origin-facing byte client, which lives outside the
// session loop) may contain them.
func TestNoWallClockCallsInSource(t *testing.T) {
	allowed := map[string]bool{"clock.go": true, "raw.go": true}
	banned := []string{
		"time.Now(", "time.Since(", "time.Sleep(", "time.After(",
		"time.NewTimer(", "time.NewTicker(",
		"context.WithTimeout(", "context.WithDeadline(",
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || allowed[name] {
			continue
		}
		src, err := os.ReadFile(filepath.Clean(name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, b := range banned {
				if strings.Contains(line, b) {
					t.Errorf("%s:%d: %s outside the Clock abstraction: %s",
						name, i+1, b, strings.TrimSpace(line))
				}
			}
		}
	}
}
