package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"pano/internal/obs"
)

func obsServer(t *testing.T) (*httptest.Server, *obs.Registry, *obs.EventLog) {
	t.Helper()
	reg := obs.NewRegistry()
	el := obs.NewEventLog(nil, 64)
	s, err := New(testManifest(t), WithObs(reg), WithEventLog(el))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, reg, el
}

func TestMetricsEndpointExposition(t *testing.T) {
	ts, _, _ := obsServer(t)

	// Generate traffic on every endpoint.
	for _, path := range []string{"/manifest.json", "/video/0/0/0.bin", "/video/0/1/2.bin", "/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE pano_http_requests_total counter",
		`pano_http_requests_total{code="200",endpoint="manifest",method="GET"} 1`,
		`pano_http_requests_total{code="200",endpoint="tile",method="GET"} 2`,
		"# TYPE pano_tile_bytes_total counter",
		"# TYPE pano_http_request_seconds histogram",
		`pano_http_request_seconds_bucket{endpoint="tile",le="+Inf"} 2`,
		`pano_http_request_seconds_count{endpoint="tile"} 2`,
		"pano_video_chunks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n--- exposition ---\n%s", want, out)
		}
	}
}

func TestTileBytesCounterMatchesBody(t *testing.T) {
	ts, reg, _ := obsServer(t)
	resp, err := http.Get(ts.URL + "/video/0/0/0.bin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := reg.CounterValue("pano_tile_bytes_total"); got != float64(len(body)) {
		t.Errorf("pano_tile_bytes_total = %v, body was %d bytes", got, len(body))
	}
	// Errors must not count media bytes.
	resp, err = http.Get(ts.URL + "/video/99/0/0.bin")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := reg.CounterValue("pano_tile_bytes_total"); got != float64(len(body)) {
		t.Errorf("404 added to pano_tile_bytes_total: %v", got)
	}
	if got := reg.CounterValue("pano_http_requests_total",
		obs.L("endpoint", "tile"), obs.L("method", "GET"), obs.L("code", "404")); got != 1 {
		t.Errorf("404 counter = %v", got)
	}
}

func TestRequestEventLogged(t *testing.T) {
	ts, _, el := obsServer(t)
	if _, err := http.Get(ts.URL + "/manifest.json"); err != nil {
		t.Fatal(err)
	}
	e, ok := el.Last("http_request")
	if !ok {
		t.Fatal("no http_request event captured")
	}
	if e.Str("endpoint") != "manifest" || e.Attr("code").(int64) != 200 {
		t.Errorf("event = %+v", e.Attrs)
	}
}

// TestTileMethodAndContentLength pins the handleTile contract: non-GET/
// HEAD is 405 (with Allow) on every endpoint, and tile responses carry
// an exact Content-Length.
func TestTileMethodAndContentLength(t *testing.T) {
	ts, _, _ := obsServer(t)

	for _, path := range []string{"/video/0/0/0.bin", "/manifest.json", "/manifest.mpd"} {
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s Allow header = %q", path, allow)
		}
	}

	resp, err := http.Get(ts.URL + "/video/0/0/0.bin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	cl, err := strconv.Atoi(resp.Header.Get("Content-Length"))
	if err != nil || cl != len(body) {
		t.Errorf("Content-Length %q, body %d bytes", resp.Header.Get("Content-Length"), len(body))
	}

	// HEAD advertises the same length without a body.
	hresp, err := http.Head(ts.URL + "/video/0/0/0.bin")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hcl := hresp.Header.Get("Content-Length"); hcl != resp.Header.Get("Content-Length") {
		t.Errorf("HEAD Content-Length %q != GET %q", hcl, resp.Header.Get("Content-Length"))
	}
}

func TestMetricsAbsentWithoutObs(t *testing.T) {
	s, err := New(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without WithObs = %d, want 404", resp.StatusCode)
	}
}

// failingWriter errors on the first body write, emulating a client that
// vanished mid-response.
type failingWriter struct {
	h    http.Header
	code int
}

func (w *failingWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}
func (w *failingWriter) WriteHeader(code int)      { w.code = code }
func (w *failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestWriteErrorsCountedAndLogged(t *testing.T) {
	reg := obs.NewRegistry()
	el := obs.NewEventLog(nil, 64)
	s, err := New(testManifest(t), WithObs(reg), WithEventLog(el))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	for _, tc := range []struct {
		path, endpoint string
	}{
		{"/manifest.json", "manifest"},
		{"/manifest.mpd", "mpd"},
		{"/video/0/0/0.bin", "tile"},
	} {
		h.ServeHTTP(&failingWriter{}, httptest.NewRequest(http.MethodGet, tc.path, nil))
		if got := reg.CounterValue("pano_http_write_errors_total", obs.L("endpoint", tc.endpoint)); got != 1 {
			t.Errorf("%s: write-error counter = %v, want 1", tc.endpoint, got)
		}
	}
	if e, ok := el.Last("http_write_error"); !ok || e.Str("error") == "" {
		t.Error("no http_write_error event with an error recorded")
	}

	// Healthy traffic never touches the counter.
	reg2 := obs.NewRegistry()
	s2, err := New(testManifest(t), WithObs(reg2))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/manifest.json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("manifest status %d", rec.Code)
	}
	if got := reg2.CounterValue("pano_http_write_errors_total", obs.L("endpoint", "manifest")); got != 0 {
		t.Errorf("healthy write counted as error: %v", got)
	}
}
