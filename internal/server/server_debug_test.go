package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pano/internal/obs"
	"pano/internal/trace"
)

func TestDebugEventsEndpoint(t *testing.T) {
	el := obs.NewEventLog(nil, 0)
	el.Logger().Info("server_started", "addr", ":0")
	s, err := New(testManifest(t), WithEventLog(el))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var evs []struct {
		Level string         `json:"level"`
		Msg   string         `json:"msg"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	var found bool
	for _, e := range evs {
		if e.Msg == "server_started" && e.Level == "INFO" && e.Attrs["addr"] == ":0" {
			found = true
		}
	}
	if !found {
		t.Errorf("logged event missing from /debug/events: %+v", evs)
	}

	// Same method contract as the other endpoints.
	post, err := http.Post(ts.URL+"/debug/events", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed || post.Header.Get("Allow") != "GET, HEAD" {
		t.Errorf("POST: status=%d Allow=%q", post.StatusCode, post.Header.Get("Allow"))
	}
	head, err := http.Head(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Errorf("HEAD status = %d", head.StatusCode)
	}
}

func TestDebugTracesEndpointMounted(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 1})
	_, sp := tracer.Start(context.Background(), "session")
	sp.End()
	s, err := New(testManifest(t), WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if n, err := trace.ValidateChromeTrace(data); err != nil || n != 1 {
		t.Errorf("served trace invalid: n=%d err=%v", n, err)
	}
}

// Without the options the debug endpoints are not mounted at all.
func TestDebugEndpointsAbsentByDefault(t *testing.T) {
	s, err := New(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/events", "/debug/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
}
