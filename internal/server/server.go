// Package server implements the video provider's HTTP endpoint. Like
// the paper's deployment (§7), the server is a plain DASH-style HTTP
// object store and never participates in adaptation: it serves the
// manifest (which embeds the compressed PSPNR lookup table) and
// per-tile media objects addressed by chunk, tile, and quality level.
// No CDN or protocol changes are required (§3, Figure 5).
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/telemetry"
	"pano/internal/trace"
)

// Server serves one video.
type Server struct {
	man    *manifest.Video
	reg    *obs.Registry
	log    *obs.EventLog
	tracer *trace.Tracer
	tel    *telemetry.Sampler

	// backend, when set (NewBackend), overrides the static in-memory
	// serving path: manifest and tiles come from it on every request,
	// so a live publisher's appends become visible without restarting.
	// nil for servers built with New — that path is untouched.
	backend Backend

	// Cache-validation state: the manifest is encoded once at New so
	// every response is byte-identical and its ETag is a true content
	// hash; tiles get a derived ETag (payloads are pure functions of
	// their address, see TileETag). lastMod anchors Last-Modified.
	manJSON []byte
	manETag string
	maxAge  time.Duration
	lastMod time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithObs attaches a metrics registry: per-endpoint request counters
// (pano_http_requests_total), latency histograms
// (pano_http_request_seconds), served-bytes counters, and a /metrics
// endpoint on Handler. nil is the no-op default.
func WithObs(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithEventLog attaches a structured request log. nil is the no-op
// default.
func WithEventLog(l *obs.EventLog) Option {
	return func(s *Server) { s.log = l }
}

// WithCacheTTL sets the max-age the server advertises in Cache-Control
// on manifest and tile responses (default 60s). Downstream HTTP caches
// — including the internal/edge tier — revalidate with If-None-Match
// after this long and get a 304 when the content is unchanged.
func WithCacheTTL(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.maxAge = d
		}
	}
}

// WithTracer attaches a span tracer: handler spans opened by
// trace.Middleware (which callers should wrap OUTSIDE any chaos or
// other middleware so those can annotate the active span) get annotated
// with endpoint, status, and bytes here, and finished traces become
// browsable at /debug/traces on Handler. nil is the no-op default.
func WithTracer(t *trace.Tracer) Option {
	return func(s *Server) { s.tracer = t }
}

// WithTelemetry attaches a windowed-telemetry sampler: SLO burn-rate
// state becomes browsable at /debug/slo (JSON) and /debug/dash (live
// SSE dashboard) on Handler. The caller owns the sampler's lifecycle
// (Start/Stop — typically via graceful.Serve's stoppers). nil is the
// no-op default and mounts nothing, keeping the serve path untouched.
func WithTelemetry(t *telemetry.Sampler) Option {
	return func(s *Server) { s.tel = t }
}

// New validates the manifest and returns a server for it.
func New(m *manifest.Video, opts ...Option) (*Server, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{man: m, maxAge: 60 * time.Second}
	for _, o := range opts {
		o(s)
	}
	// Encode once: responses are served from this buffer (byte-identical
	// to streaming the encoder) and the ETag is a hash of exactly the
	// bytes on the wire.
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, fmt.Errorf("server: encode manifest: %w", err)
	}
	s.manJSON = buf.Bytes()
	sum := sha256.Sum256(s.manJSON)
	s.manETag = `"` + hex.EncodeToString(sum[:8]) + `"`
	s.lastMod = time.Now().UTC().Truncate(time.Second)
	if s.reg != nil {
		s.reg.Gauge("pano_video_chunks", "chunks in the served manifest").Set(float64(m.NumChunks()))
		if m.NumChunks() > 0 {
			s.reg.Gauge("pano_video_tiles_per_chunk", "tiles per chunk in the served manifest").
				Set(float64(len(m.Chunks[0].Tiles)))
		}
	}
	return s, nil
}

// Handler returns the HTTP handler:
//
//	GET /manifest.json   — the native Pano manifest
//	GET /manifest.mpd    — DASH MPD projection (SRD-tiled, multi-period)
//	GET /video/{chunk}/{tile}/{level}.bin
//	GET /healthz         — liveness probe (fleet health checks target it)
//	GET /metrics         — Prometheus exposition (only with WithObs)
//	GET /debug/events    — the event-log ring buffer as a JSON array
//	                       (only with WithEventLog)
//	GET /debug/traces    — finished traces as Chrome trace-event JSON
//	                       (only with WithTracer; ?trace=<hex id> for one)
//	GET /debug/slo       — SLO burn-rate state as JSON
//	                       (only with WithTelemetry)
//	GET /debug/dash      — live telemetry dashboard (HTML + SSE)
//	                       (only with WithTelemetry)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest.json", s.instrument("manifest", s.handleManifest))
	mux.HandleFunc("/manifest.mpd", s.instrument("mpd", s.handleMPD))
	mux.HandleFunc("/video/", s.instrument("tile", s.handleTile))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !allowGetHead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	if s.reg != nil {
		mux.Handle("/metrics", s.reg.Handler())
	}
	if s.log != nil {
		mux.HandleFunc("/debug/events", s.handleEvents)
	}
	if s.tracer != nil {
		mux.Handle("/debug/traces", s.tracer.Handler())
	}
	if s.tel != nil {
		mux.Handle("/debug/slo", s.tel.SLOHandler())
		mux.Handle("/debug/dash", s.tel.DashHandler())
	}
	return mux
}

// handleEvents serves the event-log ring buffer, oldest first, as a
// JSON array of {time, level, msg, attrs} objects — a zero-dependency
// peek at recent server activity without scraping stderr.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.Method == http.MethodHead {
		return
	}
	evs := s.log.Events()
	type jsonEvent struct {
		Time  time.Time      `json:"time"`
		Level string         `json:"level"`
		Msg   string         `json:"msg"`
		Attrs map[string]any `json:"attrs,omitempty"`
	}
	out := make([]jsonEvent, len(evs))
	for i, e := range evs {
		out[i] = jsonEvent{Time: e.Time, Level: e.Level.String(), Msg: e.Msg, Attrs: e.Attrs}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		s.writeError("events", err)
	}
}

// statusWriter captures the response code and body size for metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps a handler with per-endpoint request counting,
// latency, served-bytes accounting, structured request logging, and —
// when a trace.Middleware upstream opened a handler span — span
// annotation plus an exemplar linking the latency observation to its
// trace. With no registry, log, or tracer attached it returns h
// untouched.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.reg == nil && s.log == nil && s.tracer == nil {
		return h
	}
	lat := s.reg.Histogram("pano_http_request_seconds",
		"request handling latency by endpoint", nil, obs.L("endpoint", endpoint))
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		sp := trace.FromContext(r.Context())
		sp.Annotate("endpoint", endpoint)
		sp.Annotate("code", sw.code)
		sp.Annotate("bytes", sw.bytes)
		if sw.code >= 500 {
			sp.SetError("http_5xx")
		}
		lat.ObserveExemplar(dur.Seconds(), sp.TraceHex())
		s.reg.Counter("pano_http_requests_total", "HTTP requests by endpoint, method, and status",
			obs.L("endpoint", endpoint), obs.L("method", r.Method),
			obs.L("code", strconv.Itoa(sw.code))).Inc()
		s.reg.Counter("pano_http_response_bytes_total", "response body bytes by endpoint",
			obs.L("endpoint", endpoint)).Add(float64(sw.bytes))
		if endpoint == "tile" && sw.code == http.StatusOK {
			s.reg.Counter("pano_tile_bytes_total", "tile media bytes served").Add(float64(sw.bytes))
		}
		s.log.Logger().Info("http_request",
			"endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"code", sw.code, "bytes", sw.bytes, "seconds", dur.Seconds())
	}
}

// writeError reports a failed or truncated response write. By the time
// an Encode/Write fails the status line is already on the wire, so the
// client only sees a short body — the counter and event make the
// truncation visible server-side instead of being swallowed.
func (s *Server) writeError(endpoint string, err error) {
	s.reg.Counter("pano_http_write_errors_total",
		"failed or truncated response body writes by endpoint",
		obs.L("endpoint", endpoint)).Inc()
	s.log.Logger().Warn("http_write_error", "endpoint", endpoint, "error", err.Error())
}

// allowGetHead rejects everything but GET and HEAD with 405 (every
// endpoint, uniformly) and reports whether the request may proceed.
// Delegates to the shared obs helper so every binary's endpoints
// answer methods identically.
func allowGetHead(w http.ResponseWriter, r *http.Request) bool {
	return obs.AllowGetHead(w, r)
}

func (s *Server) handleMPD(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/dash+xml")
	if r.Method == http.MethodHead {
		return
	}
	man := s.man
	if s.backend != nil {
		bm, _, _, err := s.backend.Manifest()
		if err != nil {
			s.writeError("mpd", err)
			return
		}
		man = bm
	}
	if err := man.MPD().Encode(w); err != nil {
		s.writeError("mpd", err)
	}
}

// cacheHeaders stamps the validators a downstream cache needs: a strong
// ETag, an explicit freshness lifetime, and Last-Modified (§7: the
// manifest and tile objects are ordinary HTTP objects, so any DASH-
// compatible cache can hold them).
func (s *Server) cacheHeaders(w http.ResponseWriter, etag string, maxAge time.Duration) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", fmt.Sprintf("max-age=%d", int(maxAge.Seconds())))
	h.Set("Last-Modified", s.lastMod.Format(http.TimeFormat))
}

// etagMatch reports whether an If-None-Match header value matches the
// representation's ETag: "*" matches anything, otherwise any member of
// the comma-separated list compares equal (weak-comparison: a W/ prefix
// is ignored, per RFC 9110 §8.8.3.2).
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	body, etag, maxAge := s.manJSON, s.manETag, s.maxAge
	if s.backend != nil {
		man, b, e, err := s.backend.Manifest()
		if err != nil {
			http.Error(w, "server: backend: "+err.Error(), http.StatusInternalServerError)
			return
		}
		body, etag = b, e
		if man.Live {
			// A live manifest changes every publish; don't let caches
			// hold it for the VOD lifetime.
			maxAge = liveManifestMaxAge(man.ChunkSec, s.maxAge)
		}
	}
	s.cacheHeaders(w, etag, maxAge)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	if _, err := w.Write(body); err != nil {
		// Too late for a status code: the client sees a truncated body.
		// Count and log it so silent manifest truncation is visible.
		s.writeError("manifest", err)
	}
}

// TileSizeBytes returns the serialized media size of a tile object.
func TileSizeBytes(t *manifest.Tile, l codec.Level) int {
	return int(math.Ceil(t.Bits[l] / 8))
}

// TilePayload deterministically generates the media bytes for a tile
// object. The first 16 bytes are a header encoding (chunk, tile, level)
// so clients can verify they received the right object; the rest is
// filler standing in for entropy-coded residuals.
func TilePayload(k, ti int, l codec.Level, size int) []byte {
	if size < 16 {
		size = 16
	}
	buf := make([]byte, size)
	binary.BigEndian.PutUint32(buf[0:], uint32(k))
	binary.BigEndian.PutUint32(buf[4:], uint32(ti))
	binary.BigEndian.PutUint32(buf[8:], uint32(l))
	binary.BigEndian.PutUint32(buf[12:], uint32(size))
	state := uint64(k)<<40 ^ uint64(ti)<<20 ^ uint64(l) ^ 0x9e3779b97f4a7c15
	for i := 16; i < size; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf[i] = byte(state)
	}
	return buf
}

// TileETag returns the strong entity tag of a tile object. TilePayload
// is a pure function of (chunk, tile, level, size), so a mix of exactly
// those inputs identifies the content without generating it — the 304
// revalidation path never materializes a payload.
func TileETag(k, ti int, l codec.Level, size int) string {
	mix := func(h, v uint64) uint64 {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		return h ^ (h >> 31)
	}
	h := mix(0x243f6a8885a308d3, uint64(k))
	h = mix(h, uint64(ti))
	h = mix(h, uint64(l))
	h = mix(h, uint64(size))
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h))
}

// ParseTilePath parses "/video/{chunk}/{tile}/{level}.bin".
func ParseTilePath(path string) (chunk, tile int, level codec.Level, err error) {
	rest := strings.TrimPrefix(path, "/video/")
	parts := strings.Split(rest, "/")
	if len(parts) != 3 || !strings.HasSuffix(parts[2], ".bin") {
		return 0, 0, 0, fmt.Errorf("server: bad tile path %q", path)
	}
	chunk, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad chunk in %q", path)
	}
	tile, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad tile in %q", path)
	}
	lv, err := strconv.Atoi(strings.TrimSuffix(parts[2], ".bin"))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad level in %q", path)
	}
	return chunk, tile, codec.Level(lv), nil
}

// TilePath renders the URL path for a tile object.
func TilePath(chunk, tile int, level codec.Level) string {
	return fmt.Sprintf("/video/%d/%d/%d.bin", chunk, tile, int(level))
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	if !allowGetHead(w, r) {
		return
	}
	k, ti, l, err := ParseTilePath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if k < 0 || ti < 0 || !l.Valid() {
		http.NotFound(w, r)
		return
	}
	if s.backend != nil {
		s.handleTileBackend(w, r, k, ti, l)
		return
	}
	if k >= s.man.NumChunks() {
		http.NotFound(w, r)
		return
	}
	tiles := s.man.Chunks[k].Tiles
	if ti >= len(tiles) {
		http.NotFound(w, r)
		return
	}
	size := TileSizeBytes(&tiles[ti], l)
	etag := TileETag(k, ti, l, size)
	s.cacheHeaders(w, etag, s.maxAge)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		// 304 before generating the payload: revalidation is the cheap
		// path by construction.
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(maxInt(size, 16)))
	if r.Method == http.MethodHead {
		return
	}
	if _, err := w.Write(TilePayload(k, ti, l, size)); err != nil {
		s.writeError("tile", err)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
