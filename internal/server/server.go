// Package server implements the video provider's HTTP endpoint. Like
// the paper's deployment (§7), the server is a plain DASH-style HTTP
// object store and never participates in adaptation: it serves the
// manifest (which embeds the compressed PSPNR lookup table) and
// per-tile media objects addressed by chunk, tile, and quality level.
// No CDN or protocol changes are required (§3, Figure 5).
package server

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"pano/internal/codec"
	"pano/internal/manifest"
)

// Server serves one video.
type Server struct {
	man *manifest.Video
}

// New validates the manifest and returns a server for it.
func New(m *manifest.Video) (*Server, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &Server{man: m}, nil
}

// Handler returns the HTTP handler:
//
//	GET /manifest.json   — the native Pano manifest
//	GET /manifest.mpd    — DASH MPD projection (SRD-tiled, multi-period)
//	GET /video/{chunk}/{tile}/{level}.bin
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest.json", s.handleManifest)
	mux.HandleFunc("/manifest.mpd", s.handleMPD)
	mux.HandleFunc("/video/", s.handleTile)
	return mux
}

func (s *Server) handleMPD(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/dash+xml")
	if r.Method == http.MethodHead {
		return
	}
	_ = s.man.MPD().Encode(w)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.Method == http.MethodHead {
		return
	}
	if err := s.man.Encode(w); err != nil {
		// Too late for a status code; the connection will carry the
		// truncation.
		return
	}
}

// TileSizeBytes returns the serialized media size of a tile object.
func TileSizeBytes(t *manifest.Tile, l codec.Level) int {
	return int(math.Ceil(t.Bits[l] / 8))
}

// TilePayload deterministically generates the media bytes for a tile
// object. The first 16 bytes are a header encoding (chunk, tile, level)
// so clients can verify they received the right object; the rest is
// filler standing in for entropy-coded residuals.
func TilePayload(k, ti int, l codec.Level, size int) []byte {
	if size < 16 {
		size = 16
	}
	buf := make([]byte, size)
	binary.BigEndian.PutUint32(buf[0:], uint32(k))
	binary.BigEndian.PutUint32(buf[4:], uint32(ti))
	binary.BigEndian.PutUint32(buf[8:], uint32(l))
	binary.BigEndian.PutUint32(buf[12:], uint32(size))
	state := uint64(k)<<40 ^ uint64(ti)<<20 ^ uint64(l) ^ 0x9e3779b97f4a7c15
	for i := 16; i < size; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		buf[i] = byte(state)
	}
	return buf
}

// ParseTilePath parses "/video/{chunk}/{tile}/{level}.bin".
func ParseTilePath(path string) (chunk, tile int, level codec.Level, err error) {
	rest := strings.TrimPrefix(path, "/video/")
	parts := strings.Split(rest, "/")
	if len(parts) != 3 || !strings.HasSuffix(parts[2], ".bin") {
		return 0, 0, 0, fmt.Errorf("server: bad tile path %q", path)
	}
	chunk, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad chunk in %q", path)
	}
	tile, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad tile in %q", path)
	}
	lv, err := strconv.Atoi(strings.TrimSuffix(parts[2], ".bin"))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("server: bad level in %q", path)
	}
	return chunk, tile, codec.Level(lv), nil
}

// TilePath renders the URL path for a tile object.
func TilePath(chunk, tile int, level codec.Level) string {
	return fmt.Sprintf("/video/%d/%d/%d.bin", chunk, tile, int(level))
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ti, l, err := ParseTilePath(r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if k < 0 || k >= s.man.NumChunks() || !l.Valid() {
		http.NotFound(w, r)
		return
	}
	tiles := s.man.Chunks[k].Tiles
	if ti < 0 || ti >= len(tiles) {
		http.NotFound(w, r)
		return
	}
	size := TileSizeBytes(&tiles[ti], l)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(maxInt(size, 16)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(TilePayload(k, ti, l, size))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
