package server

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/provider"
	"pano/internal/scene"
)

var (
	manOnce sync.Once
	man     *manifest.Video
)

func testManifest(t *testing.T) *manifest.Video {
	t.Helper()
	manOnce.Do(func() {
		v := scene.Generate(scene.Documentary, 31, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 2})
		m, err := provider.Preprocess(v, nil, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		man = m
	})
	return man
}

func TestNewRejectsInvalidManifest(t *testing.T) {
	if _, err := New(&manifest.Video{}); err == nil {
		t.Error("invalid manifest should be rejected")
	}
}

func TestManifestEndpoint(t *testing.T) {
	s, err := New(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	m, err := manifest.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumChunks() != testManifest(t).NumChunks() {
		t.Error("manifest round trip lost chunks")
	}
}

func TestMPDEndpoint(t *testing.T) {
	s, _ := New(testManifest(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/dash+xml" {
		t.Errorf("content type %q", ct)
	}
	mpd, err := manifest.DecodeMPD(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(mpd.Periods) != testManifest(t).NumChunks() {
		t.Errorf("periods = %d, want %d", len(mpd.Periods), testManifest(t).NumChunks())
	}
}

func TestManifestMethodNotAllowed(t *testing.T) {
	s, _ := New(testManifest(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/manifest.json", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status %d, want 405", resp.StatusCode)
	}
}

func TestTileEndpoint(t *testing.T) {
	m := testManifest(t)
	s, _ := New(m)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + TilePath(0, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := TileSizeBytes(&m.Chunks[0].Tiles[0], 2)
	buf := make([]byte, want+100)
	n := 0
	for {
		r, err := resp.Body.Read(buf[n:])
		n += r
		if err != nil {
			break
		}
	}
	if n != want && n != 16 {
		t.Errorf("body size %d, want %d", n, want)
	}
}

func TestTileEndpointErrors(t *testing.T) {
	s, _ := New(testManifest(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, c := range []struct {
		path string
		want int
	}{
		{"/video/0/0/9.bin", http.StatusNotFound},   // bad level
		{"/video/99/0/2.bin", http.StatusNotFound},  // bad chunk
		{"/video/0/999/2.bin", http.StatusNotFound}, // bad tile
		{"/video/0/0/x.bin", http.StatusBadRequest}, // malformed
		{"/video/0/0", http.StatusBadRequest},       // malformed
	} {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
}

func TestParseTilePathRoundTrip(t *testing.T) {
	p := TilePath(12, 7, codec.Level(3))
	k, ti, l, err := ParseTilePath(p)
	if err != nil {
		t.Fatal(err)
	}
	if k != 12 || ti != 7 || l != 3 {
		t.Errorf("round trip got (%d,%d,%d)", k, ti, int(l))
	}
}

func TestTilePayloadDeterministicAndTagged(t *testing.T) {
	a := TilePayload(3, 5, 2, 100)
	b := TilePayload(3, 5, 2, 100)
	if string(a) != string(b) {
		t.Error("payload should be deterministic")
	}
	c := TilePayload(3, 6, 2, 100)
	if string(a) == string(c) {
		t.Error("different tiles should differ")
	}
	if len(TilePayload(0, 0, 0, 4)) != 16 {
		t.Error("payload should have a 16-byte floor")
	}
}
