package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"pano/internal/codec"
	"pano/internal/manifest"
)

// Backend supplies manifest and tile objects dynamically, for servers
// whose content changes underneath them — internal/store's Backend
// reads a shared content-addressed store that a live publisher appends
// to, which is what makes N origins stateless front-ends over one
// directory. The static server.New path never consults a Backend and
// is byte-identical with or without this file.
type Backend interface {
	// Manifest returns the current manifest, its exact wire encoding,
	// and the ETag of those bytes. Implementations refresh on change;
	// every origin over the same store returns identical bytes and tags.
	Manifest() (*manifest.Video, []byte, string, error)
	// TileStat resolves a tile's size and strong ETag without producing
	// the payload (the 304 path). It returns ErrObjectNotFound for
	// not-yet-published objects and ErrObjectGone for objects retired
	// from the availability window.
	TileStat(k, ti int, l codec.Level) (TileStat, error)
	// TileData returns the tile's payload bytes.
	TileData(k, ti int, l codec.Level) ([]byte, error)
}

// TileStat is a tile object's serving metadata.
type TileStat struct {
	Size int
	ETag string
}

// ErrObjectNotFound maps to 404: the object is not (yet) published.
var ErrObjectNotFound = errors.New("server: object not found")

// ErrObjectGone maps to 410: the object was published and has been
// retired from the availability window — it is never coming back, which
// downstream caches may negative-cache harder than a 404.
var ErrObjectGone = errors.New("server: object gone")

// NewBackend returns a server that serves manifest and tiles through b
// instead of from process memory. The initial snapshot is validated
// once; later refreshes are trusted to come from a publisher that
// validated before publishing.
func NewBackend(b Backend, opts ...Option) (*Server, error) {
	man, body, etag, err := b.Manifest()
	if err != nil {
		return nil, fmt.Errorf("server: backend: %w", err)
	}
	if err := man.Validate(); err != nil {
		return nil, fmt.Errorf("server: backend: %w", err)
	}
	s := &Server{man: man, backend: b, maxAge: 60 * time.Second}
	for _, o := range opts {
		o(s)
	}
	s.manJSON = body
	s.manETag = etag
	s.lastMod = time.Now().UTC().Truncate(time.Second)
	if s.reg != nil {
		s.reg.Gauge("pano_video_chunks", "chunks in the served manifest").Set(float64(man.NumChunks()))
		if man.NumChunks() > 0 {
			s.reg.Gauge("pano_video_tiles_per_chunk", "tiles per chunk in the served manifest").
				Set(float64(len(man.Chunks[0].Tiles)))
		}
	}
	return s, nil
}

// liveManifestMaxAge shortens the manifest's advertised freshness while
// a feed is live: a manifest cached for the VOD default (60 s) would
// hide half a minute of published chunks from every client behind an
// edge. Half a chunk duration keeps refresh latency under one chunk
// without hammering the origin; immutable tiles keep the full TTL.
func liveManifestMaxAge(chunkSec float64, def time.Duration) time.Duration {
	d := time.Duration(chunkSec * float64(time.Second) / 2)
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > def {
		d = def
	}
	return d
}

// handleTileBackend is handleTile's dynamic path: existence, size, and
// ETag come from the backend, with 404/410 distinguishing unpublished
// from retired objects.
func (s *Server) handleTileBackend(w http.ResponseWriter, r *http.Request, k, ti int, l codec.Level) {
	st, err := s.backend.TileStat(k, ti, l)
	switch {
	case errors.Is(err, ErrObjectGone):
		http.Error(w, "tile retired from availability window", http.StatusGone)
		return
	case errors.Is(err, ErrObjectNotFound):
		http.NotFound(w, r)
		return
	case err != nil:
		http.Error(w, "server: backend: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.cacheHeaders(w, st.ETag, s.maxAge)
	if etagMatch(r.Header.Get("If-None-Match"), st.ETag) {
		// 304 from the stat alone: the blob is never read.
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(maxInt(st.Size, 16)))
	if r.Method == http.MethodHead {
		return
	}
	body, err := s.backend.TileData(k, ti, l)
	if err != nil {
		// Headers are already written; surface the truncation server-side.
		s.writeError("tile", err)
		return
	}
	if _, err := w.Write(body); err != nil {
		s.writeError("tile", err)
	}
}
