package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestManifestCacheValidators: the manifest response carries a strong
// ETag, an explicit max-age, and Last-Modified; If-None-Match with the
// current tag gets a bodyless 304, a stale tag the full body again.
func TestManifestCacheValidators(t *testing.T) {
	s, err := New(testManifest(t), WithCacheTTL(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("manifest response has no ETag")
	}
	if got := resp.Header.Get("Cache-Control"); got != "max-age=30" {
		t.Errorf("Cache-Control = %q, want max-age=30", got)
	}
	if lm := resp.Header.Get("Last-Modified"); lm == "" {
		t.Error("manifest response has no Last-Modified")
	} else if _, err := time.Parse(http.TimeFormat, lm); err != nil {
		t.Errorf("Last-Modified %q not in HTTP date format: %v", lm, err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/manifest.json", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match: status %d, want 304", resp2.StatusCode)
	}
	if len(b2) != 0 {
		t.Errorf("304 carried a %d-byte body", len(b2))
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	req.Header.Set("If-None-Match", `"deadbeefdeadbeef"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: status %d, want 200", resp3.StatusCode)
	}
	if string(b3) != string(body) {
		t.Error("re-fetched manifest differs from the original")
	}
}

// TestTileCacheValidators: tiles get per-object ETags, revalidate with
// 304, and distinct objects get distinct tags.
func TestTileCacheValidators(t *testing.T) {
	s, err := New(testManifest(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path, etag string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := get("/video/0/0/0.bin", "")
	b1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	e1 := r1.Header.Get("ETag")
	if r1.StatusCode != http.StatusOK || e1 == "" {
		t.Fatalf("tile fetch: status %d etag %q", r1.StatusCode, e1)
	}

	r2 := get("/video/0/0/0.bin", e1)
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotModified || len(b2) != 0 {
		t.Fatalf("revalidation: status %d body %d bytes, want bodyless 304", r2.StatusCode, len(b2))
	}

	r3 := get("/video/0/0/1.bin", "")
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if e3 := r3.Header.Get("ETag"); e3 == e1 {
		t.Errorf("different levels share ETag %q", e1)
	}

	// Wildcard matches any current representation.
	r4 := get("/video/0/0/0.bin", "*")
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match: * got status %d, want 304", r4.StatusCode)
	}
	if len(b1) == 0 {
		t.Error("tile body empty")
	}
}

func TestEtagMatch(t *testing.T) {
	cases := []struct {
		header, etag string
		want         bool
	}{
		{"", `"abc"`, false},
		{`"abc"`, `"abc"`, true},
		{`W/"abc"`, `"abc"`, true},
		{`"x", "abc"`, `"abc"`, true},
		{`"x"`, `"abc"`, false},
		{"*", `"abc"`, true},
		{`"abc"`, "", false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, c.etag); got != c.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}
