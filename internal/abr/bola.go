package abr

import (
	"math"

	"pano/internal/codec"
)

// Controller is the chunk-level bitrate decision interface shared by
// the MPC of §6.1 and alternative algorithms. Implementations pick the
// uniform quality level whose total size becomes the chunk's tile
// budget.
type Controller interface {
	// PickLevel chooses the next chunk's level given the buffer, the
	// predicted bandwidth in bits/s, the chunk duration, the previous
	// level (-1 at start), and per-chunk plans for the lookahead
	// horizon (at least one entry).
	PickLevel(bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []ChunkPlan) codec.Level
}

var (
	_ Controller = (*MPC)(nil)
	_ Controller = (*BOLA)(nil)
)

// BOLA is the buffer-occupancy controller of Spiteri et al. (BOLA,
// INFOCOM 2016), which the paper cites among the chunk-level adaptation
// algorithms 360° systems build on. It needs no bandwidth prediction:
// each level m has utility ln(S_m/S_min), and the controller maximizes
// (V·(utility + γp) − Q)/S_m where Q is the buffer in chunk units.
type BOLA struct {
	// MaxBufferSec caps the buffer (sets the V parameter).
	MaxBufferSec float64
	// GammaP is the rebuffering-avoidance utility weight.
	GammaP float64
}

// NewBOLA returns a controller sized for the given maximum buffer.
func NewBOLA(maxBufferSec float64) *BOLA {
	return &BOLA{MaxBufferSec: maxBufferSec, GammaP: 5}
}

// PickLevel implements Controller. Only the first horizon entry is
// used: BOLA is memoryless beyond the buffer level.
func (b *BOLA) PickLevel(bufferSec, _ float64, chunkSec float64, _ codec.Level, horizon []ChunkPlan) codec.Level {
	lowest := codec.Level(codec.NumLevels - 1)
	if len(horizon) == 0 || chunkSec <= 0 {
		return lowest
	}
	plan := horizon[0]
	minBits := plan.Bits[codec.NumLevels-1]
	if minBits <= 0 {
		return lowest
	}
	// Utilities, in order of decreasing quality.
	var utility [codec.NumLevels]float64
	for l := 0; l < codec.NumLevels; l++ {
		utility[l] = math.Log(plan.Bits[l] / minBits)
	}
	// V maps utility to buffer headroom, chosen so the top level's
	// score reaches zero exactly at the full buffer: near empty only
	// the lowest level scores positive, near full every level does and
	// the top wins.
	qMax := b.MaxBufferSec / chunkSec
	v := qMax / (utility[0] + b.GammaP)
	q := bufferSec / chunkSec

	best := lowest
	bestScore := math.Inf(-1)
	for l := 0; l < codec.NumLevels; l++ {
		score := (v*(utility[l]+b.GammaP) - q) / (plan.Bits[l] / minBits)
		if score > bestScore {
			bestScore = score
			best = codec.Level(l)
		}
	}
	if bestScore < 0 {
		return lowest
	}
	return best
}
