package abr

import (
	"math"

	"pano/internal/codec"
)

// ChunkPlan gives the MPC controller one future chunk's menu: total size
// and a representative quality value per uniform level assignment.
type ChunkPlan struct {
	Bits    [codec.NumLevels]float64
	Quality [codec.NumLevels]float64
}

// MPC is the chunk-level bitrate controller of §6.1 (model-predictive
// control after Yin et al. [64]): it enumerates level sequences over a
// short horizon, simulates the buffer under predicted bandwidth, and
// commits the first step of the best sequence.
type MPC struct {
	// Horizon is the lookahead depth in chunks.
	Horizon int
	// TargetBufferSec is the buffer length target.
	TargetBufferSec float64
	// RebufPenalty converts rebuffer seconds into quality units.
	RebufPenalty float64
	// SwitchPenalty converts level jumps into quality units.
	SwitchPenalty float64
	// BufferPenalty converts deviation from the buffer target into
	// quality units (keeps the controller near its target).
	BufferPenalty float64
}

// NewMPC returns a controller with the paper's defaults: 3-chunk
// horizon and a configurable buffer target (the paper tests {1,2,3} s).
func NewMPC(targetBufferSec float64) *MPC {
	return &MPC{
		Horizon:         3,
		TargetBufferSec: targetBufferSec,
		RebufPenalty:    50,
		SwitchPenalty:   0.2,
		BufferPenalty:   0.5,
	}
}

// PickLevel chooses the uniform quality level for the next chunk given
// the current buffer, predicted bandwidth (bits/s), the chunk duration,
// the previous chunk's level (for switch penalties; pass -1 at start),
// and the horizon's chunk plans (at least one; shorter horizons are
// evaluated as-is). The resulting level's Bits value is the chunk's tile
// budget.
func (m *MPC) PickLevel(bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []ChunkPlan) codec.Level {
	if len(horizon) == 0 {
		return codec.Level(codec.NumLevels - 1)
	}
	h := m.Horizon
	if h > len(horizon) {
		h = len(horizon)
	}
	if h < 1 {
		h = 1
	}
	if predBWbps <= 0 {
		predBWbps = 1e3
	}
	bestFirst := codec.Level(codec.NumLevels - 1)
	bestScore := math.Inf(-1)
	seq := make([]codec.Level, h)
	var rec func(step int, buf, score float64, last codec.Level)
	rec = func(step int, buf, score float64, last codec.Level) {
		if step == h {
			if score > bestScore {
				bestScore = score
				bestFirst = seq[0]
			}
			return
		}
		for l := 0; l < codec.NumLevels; l++ {
			lv := codec.Level(l)
			dl := horizon[step].Bits[l] / predBWbps
			rebuf := math.Max(dl-buf, 0)
			nb := math.Max(buf-dl, 0) + chunkSec
			s := score + horizon[step].Quality[l] - m.RebufPenalty*rebuf -
				m.BufferPenalty*math.Abs(nb-m.TargetBufferSec)
			if last >= 0 {
				s -= m.SwitchPenalty * math.Abs(float64(lv-last))
			}
			seq[step] = lv
			rec(step+1, nb, s, lv)
		}
	}
	rec(0, bufferSec, 0, prev)
	return bestFirst
}

// BandwidthPredictor estimates near-future throughput with a harmonic
// mean over a sliding window of observed chunk throughputs — the robust
// estimator commonly paired with MPC.
type BandwidthPredictor struct {
	// Window is the number of recent observations used.
	Window  int
	samples []float64
}

// NewBandwidthPredictor returns a predictor over the last 5 downloads.
func NewBandwidthPredictor() *BandwidthPredictor {
	return &BandwidthPredictor{Window: 5}
}

// Observe records a measured throughput in bits/s.
func (p *BandwidthPredictor) Observe(bps float64) {
	if bps <= 0 {
		return
	}
	p.samples = append(p.samples, bps)
	if len(p.samples) > p.Window {
		p.samples = p.samples[len(p.samples)-p.Window:]
	}
}

// Predict returns the harmonic-mean estimate, or 0 with no history.
func (p *BandwidthPredictor) Predict() float64 {
	if len(p.samples) == 0 {
		return 0
	}
	var inv float64
	for _, s := range p.samples {
		inv += 1 / s
	}
	return float64(len(p.samples)) / inv
}
