package abr

import (
	"context"
	"math"
	"strconv"

	"pano/internal/codec"
	"pano/internal/obs"
	"pano/internal/trace"
)

// ChunkPlan gives the MPC controller one future chunk's menu: total size
// and a representative quality value per uniform level assignment.
type ChunkPlan struct {
	Bits    [codec.NumLevels]float64
	Quality [codec.NumLevels]float64
}

// MPC is the chunk-level bitrate controller of §6.1 (model-predictive
// control after Yin et al. [64]): it enumerates level sequences over a
// short horizon, simulates the buffer under predicted bandwidth, and
// commits the first step of the best sequence.
type MPC struct {
	// Horizon is the lookahead depth in chunks.
	Horizon int
	// TargetBufferSec is the buffer length target.
	TargetBufferSec float64
	// RebufPenalty converts rebuffer seconds into quality units.
	RebufPenalty float64
	// SwitchPenalty converts level jumps into quality units.
	SwitchPenalty float64
	// BufferPenalty converts deviation from the buffer target into
	// quality units (keeps the controller near its target).
	BufferPenalty float64
	// Obs, when set, records decision latency into the
	// pano_abr_decision_seconds histogram and the chosen level into
	// pano_abr_level_decisions_total (nil = disabled).
	Obs *obs.Registry
}

// NewMPC returns a controller with the paper's defaults: 3-chunk
// horizon and a configurable buffer target (the paper tests {1,2,3} s).
func NewMPC(targetBufferSec float64) *MPC {
	return &MPC{
		Horizon:         3,
		TargetBufferSec: targetBufferSec,
		RebufPenalty:    50,
		SwitchPenalty:   0.2,
		BufferPenalty:   0.5,
	}
}

// PickLevel chooses the uniform quality level for the next chunk given
// the current buffer, predicted bandwidth (bits/s), the chunk duration,
// the previous chunk's level (for switch penalties; pass -1 at start),
// and the horizon's chunk plans (at least one; shorter horizons are
// evaluated as-is). The resulting level's Bits value is the chunk's tile
// budget.
func (m *MPC) PickLevel(bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []ChunkPlan) codec.Level {
	return m.PickLevelCtx(context.Background(), bufferSec, predBWbps, chunkSec, prev, horizon)
}

// ContextController is implemented by controllers that carry tracing
// context through the decision (the MPC opens an "mpc" span as a child
// of the context's chunk span and exemplar-links its latency
// histogram). Callers holding a traced context should prefer it.
type ContextController interface {
	Controller
	PickLevelCtx(ctx context.Context, bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []ChunkPlan) codec.Level
}

var _ ContextController = (*MPC)(nil)

// PickLevelCtx is PickLevel under a context: when ctx carries an active
// trace span, the decision runs inside a child "mpc" span (annotated
// with the chosen level and horizon depth, §6.1's decision step), and
// the pano_abr_decision_seconds observation carries the trace id as an
// exemplar so a slow decision bucket links to its trace.
func (m *MPC) PickLevelCtx(ctx context.Context, bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []ChunkPlan) codec.Level {
	if m.Obs == nil && trace.FromContext(ctx) == nil {
		return m.pickLevel(bufferSec, predBWbps, chunkSec, prev, horizon)
	}
	_, sp := trace.StartSpan(ctx, "mpc",
		trace.A("buffer_sec", bufferSec), trace.A("pred_bps", predBWbps))
	t := obs.NewTimer(nil)
	lv := m.pickLevel(bufferSec, predBWbps, chunkSec, prev, horizon)
	d := t.ObserveDuration()
	sp.Annotate("level", int(lv))
	sp.Annotate("horizon", len(horizon))
	sp.End()
	if m.Obs != nil {
		m.Obs.Histogram("pano_abr_decision_seconds",
			"MPC chunk-level decision latency", nil).ObserveExemplar(d.Seconds(), sp.TraceHex())
		m.Obs.Counter("pano_abr_level_decisions_total", "MPC decisions by chosen level",
			obs.L("level", levelLabel(lv))).Inc()
	}
	return lv
}

func levelLabel(l codec.Level) string {
	return "L" + strconv.Itoa(int(l))
}

func (m *MPC) pickLevel(bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []ChunkPlan) codec.Level {
	if len(horizon) == 0 {
		return codec.Level(codec.NumLevels - 1)
	}
	h := m.Horizon
	if h > len(horizon) {
		h = len(horizon)
	}
	if h < 1 {
		h = 1
	}
	if predBWbps <= 0 {
		predBWbps = 1e3
	}
	bestFirst := codec.Level(codec.NumLevels - 1)
	bestScore := math.Inf(-1)
	seq := make([]codec.Level, h)
	var rec func(step int, buf, score float64, last codec.Level)
	rec = func(step int, buf, score float64, last codec.Level) {
		if step == h {
			if score > bestScore {
				bestScore = score
				bestFirst = seq[0]
			}
			return
		}
		for l := 0; l < codec.NumLevels; l++ {
			lv := codec.Level(l)
			dl := horizon[step].Bits[l] / predBWbps
			rebuf := math.Max(dl-buf, 0)
			nb := math.Max(buf-dl, 0) + chunkSec
			s := score + horizon[step].Quality[l] - m.RebufPenalty*rebuf -
				m.BufferPenalty*math.Abs(nb-m.TargetBufferSec)
			if last >= 0 {
				s -= m.SwitchPenalty * math.Abs(float64(lv-last))
			}
			seq[step] = lv
			rec(step+1, nb, s, lv)
		}
	}
	rec(0, bufferSec, 0, prev)
	return bestFirst
}

// BandwidthPredictor estimates near-future throughput with a harmonic
// mean over a sliding window of observed chunk throughputs — the robust
// estimator commonly paired with MPC.
type BandwidthPredictor struct {
	// Window is the number of recent observations used.
	Window  int
	samples []float64
	// Obs, when set, records |predicted-actual|/actual into the
	// pano_abr_bw_prediction_error_ratio histogram on every
	// observation that follows a prediction (the §8.3 robustness
	// variable). nil = disabled.
	Obs *obs.Registry
}

// NewBandwidthPredictor returns a predictor over the last 5 downloads.
func NewBandwidthPredictor() *BandwidthPredictor {
	return &BandwidthPredictor{Window: 5}
}

// BWErrorBuckets are relative-error bounds for the predicted-vs-actual
// bandwidth histogram (0 = perfect; the paper stresses up to 40%).
var BWErrorBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6}

// Observe records a measured throughput in bits/s.
func (p *BandwidthPredictor) Observe(bps float64) {
	if bps <= 0 {
		return
	}
	if p.Obs != nil {
		if pred := p.Predict(); pred > 0 {
			p.Obs.Histogram("pano_abr_bw_prediction_error_ratio",
				"relative error of the harmonic-mean bandwidth prediction vs the next measured throughput",
				BWErrorBuckets).Observe(math.Abs(pred-bps) / bps)
		}
	}
	p.samples = append(p.samples, bps)
	if len(p.samples) > p.Window {
		p.samples = p.samples[len(p.samples)-p.Window:]
	}
}

// Predict returns the harmonic-mean estimate, or 0 with no history.
func (p *BandwidthPredictor) Predict() float64 {
	if len(p.samples) == 0 {
		return 0
	}
	var inv float64
	for _, s := range p.samples {
		inv += 1 / s
	}
	return float64(len(p.samples)) / inv
}
