package abr

import (
	"math"
	"testing"

	"pano/internal/codec"
	"pano/internal/obs"
)

func flatHorizon(n int) []ChunkPlan {
	h := make([]ChunkPlan, n)
	for i := range h {
		for l := 0; l < codec.NumLevels; l++ {
			h[i].Bits[l] = float64(codec.NumLevels-l) * 1e6
			h[i].Quality[l] = float64(codec.NumLevels - l)
		}
	}
	return h
}

func TestMPCRecordsDecisionLatency(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMPC(2)
	m.Obs = reg
	lv := m.PickLevel(2, 8e6, 1, -1, flatHorizon(3))
	if !lv.Valid() {
		t.Fatalf("invalid level %v", lv)
	}
	if got := reg.HistogramCount("pano_abr_decision_seconds"); got != 1 {
		t.Fatalf("decision latency observations = %d, want 1", got)
	}
	if got := reg.CounterValue("pano_abr_level_decisions_total", obs.L("level", levelLabel(lv))); got != 1 {
		t.Fatalf("level decision counter = %v, want 1", got)
	}
	// With no registry the same call still works.
	m.Obs = nil
	if got := m.PickLevel(2, 8e6, 1, -1, flatHorizon(3)); got != lv {
		t.Fatalf("Obs changed the decision: %v vs %v", got, lv)
	}
}

func TestBandwidthPredictorRecordsError(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewBandwidthPredictor()
	p.Obs = reg
	p.Observe(1e6) // no prior prediction: nothing recorded
	if got := reg.HistogramCount("pano_abr_bw_prediction_error_ratio"); got != 0 {
		t.Fatalf("error recorded with no prediction: %d", got)
	}
	p.Observe(2e6) // prediction was 1e6, actual 2e6 → error 0.5
	if got := reg.HistogramCount("pano_abr_bw_prediction_error_ratio"); got != 1 {
		t.Fatalf("error observations = %d, want 1", got)
	}
	if got := reg.HistogramSum("pano_abr_bw_prediction_error_ratio"); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("error sum = %v, want 0.5", got)
	}
	// Instrumentation must not change the estimate.
	q := NewBandwidthPredictor()
	q.Observe(1e6)
	q.Observe(2e6)
	if p.Predict() != q.Predict() {
		t.Fatalf("Obs changed prediction: %v vs %v", p.Predict(), q.Predict())
	}
}
