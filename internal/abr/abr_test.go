package abr

import (
	"math"
	"testing"
	"testing/quick"

	"pano/internal/codec"
	"pano/internal/mathx"
)

// randomTiles builds a plausible tile menu: bits decrease and cost
// increases as the level index grows.
func randomTiles(rng *mathx.RNG, n int) []TileChoice {
	tiles := make([]TileChoice, n)
	for i := range tiles {
		base := rng.Range(1e4, 2e5)
		cost := rng.Range(1, 30)
		for l := 0; l < codec.NumLevels; l++ {
			tiles[i].Bits[l] = base / math.Pow(1.8, float64(l))
			tiles[i].Cost[l] = cost * math.Pow(2.2, float64(l))
		}
		tiles[i].Cost[0] = 0 // top level: no perceptible distortion
	}
	return tiles
}

func TestGreedyRespectsBudget(t *testing.T) {
	rng := mathx.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		tiles := randomTiles(rng, 30)
		low := TotalBits(tiles, lowestLevels(30))
		budget := low * rng.Range(1.0, 6.0)
		a := AllocateGreedy(tiles, budget)
		if got := TotalBits(tiles, a); got > budget+1e-6 {
			t.Fatalf("trial %d: bits %v over budget %v", trial, got, budget)
		}
	}
}

func TestGreedyUsesSpareBudget(t *testing.T) {
	rng := mathx.NewRNG(2)
	tiles := randomTiles(rng, 10)
	top := TotalBits(tiles, make(Allocation, 10)) // all level 0
	a := AllocateGreedy(tiles, top*2)
	for i, l := range a {
		if l != 0 {
			t.Errorf("tile %d at level %v with unlimited budget", i, l)
		}
	}
}

func TestGreedyTightBudgetIsAllLowest(t *testing.T) {
	rng := mathx.NewRNG(3)
	tiles := randomTiles(rng, 10)
	a := AllocateGreedy(tiles, 1) // impossible budget
	for _, l := range a {
		if l != codec.Level(codec.NumLevels-1) {
			t.Error("under impossible budget all tiles should be lowest")
		}
	}
}

func TestPrunedMatchesExhaustive(t *testing.T) {
	rng := mathx.NewRNG(4)
	for trial := 0; trial < 15; trial++ {
		tiles := randomTiles(rng, 6)
		low := TotalBits(tiles, lowestLevels(6))
		budget := low * rng.Range(1.2, 4.0)
		want, err := AllocateExhaustive(tiles, budget)
		if err != nil {
			t.Fatal(err)
		}
		got := AllocatePruned(tiles, budget, 0)
		wc, gc := TotalCost(tiles, want), TotalCost(tiles, got)
		if TotalBits(tiles, got) > budget+1e-6 {
			t.Fatalf("trial %d: pruned over budget", trial)
		}
		if gc > wc*1.0001+1e-9 {
			t.Errorf("trial %d: pruned cost %v > exhaustive %v", trial, gc, wc)
		}
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	rng := mathx.NewRNG(5)
	var worst float64 = 1
	for trial := 0; trial < 15; trial++ {
		tiles := randomTiles(rng, 7)
		low := TotalBits(tiles, lowestLevels(7))
		budget := low * rng.Range(1.5, 3.0)
		opt, err := AllocateExhaustive(tiles, budget)
		if err != nil {
			t.Fatal(err)
		}
		g := AllocateGreedy(tiles, budget)
		oc, gc := TotalCost(tiles, opt), TotalCost(tiles, g)
		if oc > 0 {
			if r := gc / oc; r > worst {
				worst = r
			}
		}
	}
	if worst > 1.6 {
		t.Errorf("greedy worst-case ratio %v vs optimal, want < 1.6", worst)
	}
}

func TestPrunedRespectsBudgetLargeInstance(t *testing.T) {
	rng := mathx.NewRNG(6)
	tiles := randomTiles(rng, 60)
	low := TotalBits(tiles, lowestLevels(60))
	budget := low * 2.5
	a := AllocatePruned(tiles, budget, 0)
	if TotalBits(tiles, a) > budget+1e-6 {
		t.Fatal("over budget")
	}
	// Must beat or match greedy (it is closer to exact).
	g := AllocateGreedy(tiles, budget)
	if TotalCost(tiles, a) > TotalCost(tiles, g)*1.05+1e-9 {
		t.Errorf("pruned cost %v worse than greedy %v", TotalCost(tiles, a), TotalCost(tiles, g))
	}
}

func TestPrunedPropertyNeverOverBudget(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 2 + rng.Intn(20)
		tiles := randomTiles(rng, n)
		low := TotalBits(tiles, lowestLevels(n))
		budget := low * rng.Range(0.5, 5)
		a := AllocatePruned(tiles, budget, 256)
		if len(a) != n {
			return false
		}
		// Below the all-lowest size nothing fits: the fallback is
		// all-lowest, which may exceed the budget by necessity.
		if budget >= low {
			return TotalBits(tiles, a) <= budget+1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveRejectsLargeN(t *testing.T) {
	tiles := make([]TileChoice, 11)
	if _, err := AllocateExhaustive(tiles, 1e9); err == nil {
		t.Error("want error for n > 10")
	}
}

func TestAllocateEmpty(t *testing.T) {
	if a := AllocatePruned(nil, 100, 0); a != nil {
		t.Error("empty tiles should yield nil allocation")
	}
	if a := AllocateGreedy(nil, 100); len(a) != 0 {
		t.Error("empty greedy should be empty")
	}
}

func TestMPCPrefersHighQualityWithFatPipe(t *testing.T) {
	m := NewMPC(2)
	plans := make([]ChunkPlan, 3)
	for i := range plans {
		for l := 0; l < codec.NumLevels; l++ {
			plans[i].Bits[l] = 1e6 / math.Pow(2, float64(l))
			plans[i].Quality[l] = 80 - 10*float64(l)
		}
	}
	// 100 Mbps: downloads are instant; the controller should max out.
	if got := m.PickLevel(2, 100e6, 1, -1, plans); got != 0 {
		t.Errorf("fat pipe level = %v, want 0", got)
	}
	// 100 kbps: even the lowest level takes ~0.6 s per chunk.
	if got := m.PickLevel(0.5, 100e3, 1, -1, plans); got != codec.Level(codec.NumLevels-1) {
		t.Errorf("starved level = %v, want lowest", got)
	}
}

func TestMPCAvoidsRebuffering(t *testing.T) {
	m := NewMPC(2)
	plans := make([]ChunkPlan, 3)
	for i := range plans {
		for l := 0; l < codec.NumLevels; l++ {
			plans[i].Bits[l] = 4e6 / math.Pow(2, float64(l))
			plans[i].Quality[l] = 80 - 8*float64(l)
		}
	}
	// 2 Mbps with a thin buffer: level 0 (4e6 bits = 2 s download)
	// would stall; the controller must back off.
	got := m.PickLevel(0.8, 2e6, 1, -1, plans)
	if got == 0 {
		t.Error("controller picked a stalling level")
	}
}

func TestMPCSwitchPenaltySmoothes(t *testing.T) {
	m := NewMPC(2)
	m.SwitchPenalty = 100 // draconian
	plans := make([]ChunkPlan, 3)
	for i := range plans {
		for l := 0; l < codec.NumLevels; l++ {
			plans[i].Bits[l] = 1e5
			plans[i].Quality[l] = 80 - float64(l)
		}
	}
	// All levels equal in size; previous level was 3. A huge switch
	// penalty should hold the controller at 3 despite slightly better
	// quality at 0.
	if got := m.PickLevel(2, 10e6, 1, 3, plans); got != 3 {
		t.Errorf("level = %v, want 3 under heavy switch penalty", got)
	}
}

func TestMPCEmptyHorizon(t *testing.T) {
	m := NewMPC(2)
	if got := m.PickLevel(1, 1e6, 1, -1, nil); got != codec.Level(codec.NumLevels-1) {
		t.Errorf("empty horizon level = %v, want lowest", got)
	}
}

func TestBandwidthPredictorHarmonicMean(t *testing.T) {
	p := NewBandwidthPredictor()
	if p.Predict() != 0 {
		t.Error("no history should predict 0")
	}
	p.Observe(1e6)
	p.Observe(4e6)
	// Harmonic mean of 1 and 4 Mbps = 1.6 Mbps.
	if got := p.Predict(); math.Abs(got-1.6e6) > 1 {
		t.Errorf("harmonic mean = %v, want 1.6e6", got)
	}
	// Window slides.
	p.Window = 2
	p.Observe(4e6)
	p.Observe(4e6)
	if got := p.Predict(); math.Abs(got-4e6) > 1 {
		t.Errorf("windowed mean = %v, want 4e6", got)
	}
	// Non-positive observations ignored.
	p.Observe(-5)
	if got := p.Predict(); math.Abs(got-4e6) > 1 {
		t.Error("negative observation should be ignored")
	}
}
