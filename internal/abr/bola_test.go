package abr

import (
	"math"
	"testing"

	"pano/internal/codec"
)

func bolaPlan() []ChunkPlan {
	p := ChunkPlan{}
	for l := 0; l < codec.NumLevels; l++ {
		p.Bits[l] = 1e6 / math.Pow(1.8, float64(l))
		p.Quality[l] = float64(codec.NumLevels - l)
	}
	return []ChunkPlan{p}
}

func TestBOLAEmptyBufferPicksLowest(t *testing.T) {
	b := NewBOLA(6)
	if got := b.PickLevel(0, 0, 1, -1, bolaPlan()); got != codec.Level(codec.NumLevels-1) {
		t.Errorf("empty buffer level = %v, want lowest", got)
	}
}

func TestBOLAFullBufferPicksHighest(t *testing.T) {
	b := NewBOLA(6)
	if got := b.PickLevel(6, 0, 1, -1, bolaPlan()); got != 0 {
		t.Errorf("full buffer level = %v, want 0", got)
	}
}

func TestBOLAMonotoneInBuffer(t *testing.T) {
	b := NewBOLA(6)
	prev := codec.Level(codec.NumLevels)
	for buf := 0.0; buf <= 6; buf += 0.5 {
		got := b.PickLevel(buf, 0, 1, -1, bolaPlan())
		if got > prev {
			t.Fatalf("level worsened from %v to %v as buffer grew to %v", prev, got, buf)
		}
		prev = got
	}
}

func TestBOLADegenerateInputs(t *testing.T) {
	b := NewBOLA(6)
	lowest := codec.Level(codec.NumLevels - 1)
	if b.PickLevel(3, 0, 1, -1, nil) != lowest {
		t.Error("empty horizon should pick lowest")
	}
	if b.PickLevel(3, 0, 0, -1, bolaPlan()) != lowest {
		t.Error("zero chunk duration should pick lowest")
	}
	var zero ChunkPlan
	if b.PickLevel(3, 0, 1, -1, []ChunkPlan{zero}) != lowest {
		t.Error("zero-size plan should pick lowest")
	}
}

func TestControllersShareInterface(t *testing.T) {
	var cs []Controller = []Controller{NewMPC(2), NewBOLA(4)}
	for _, c := range cs {
		l := c.PickLevel(2, 1e6, 1, -1, bolaPlan())
		if !l.Valid() {
			t.Errorf("%T returned invalid level %v", c, l)
		}
	}
}
