// Package abr implements Pano's two-level quality adaptation (§6.1):
//
//   - Chunk level: an MPC controller (after Yin et al.) picks each
//     chunk's bitrate budget to balance quality against rebuffering
//     under predicted bandwidth, with a target buffer length.
//   - Tile level: given the chunk budget, assign a quality level to each
//     tile to maximize the chunk PSPNR — equivalently, minimize the
//     area-weighted sum of perceptible MSEs — subject to the total tile
//     size staying within budget.
//
// Three tile allocators are provided: the paper's dominance-pruned
// enumeration (exact Pareto-frontier dynamic programming over tiles), a
// fast greedy marginal-utility allocator, and an exhaustive search for
// small instances (ground truth in tests and the pruning benchmark).
package abr

import (
	"fmt"
	"math"
	"sort"

	"pano/internal/codec"
)

// TileChoice describes one tile's options: encoded size and weighted
// perceptible distortion (area × PMSE) at each quality level. Level 0 is
// the highest quality: Bits non-increasing and Cost non-decreasing in
// the level index.
type TileChoice struct {
	Bits [codec.NumLevels]float64
	Cost [codec.NumLevels]float64
}

// Allocation is the chosen level per tile.
type Allocation []codec.Level

// TotalBits sums the allocation's size.
func TotalBits(tiles []TileChoice, a Allocation) float64 {
	var s float64
	for i, l := range a {
		s += tiles[i].Bits[l]
	}
	return s
}

// TotalCost sums the allocation's weighted distortion.
func TotalCost(tiles []TileChoice, a Allocation) float64 {
	var s float64
	for i, l := range a {
		s += tiles[i].Cost[l]
	}
	return s
}

// lowestLevels returns the all-lowest-quality allocation.
func lowestLevels(n int) Allocation {
	a := make(Allocation, n)
	for i := range a {
		a[i] = codec.Level(codec.NumLevels - 1)
	}
	return a
}

// AllocateGreedy assigns levels by repeated marginal-utility upgrades:
// starting from the lowest quality everywhere, it upgrades whichever
// tile yields the largest distortion reduction per additional bit until
// the budget is exhausted. Runs in O(N·L·log N).
func AllocateGreedy(tiles []TileChoice, budget float64) Allocation {
	a := lowestLevels(len(tiles))
	spent := TotalBits(tiles, a)
	type cand struct {
		tile  int
		ratio float64
	}
	better := func(i int) (cand, bool) {
		l := a[i]
		if l == 0 {
			return cand{}, false
		}
		db := tiles[i].Bits[l-1] - tiles[i].Bits[l]
		dc := tiles[i].Cost[l] - tiles[i].Cost[l-1]
		if db <= 0 {
			// Free upgrade.
			return cand{tile: i, ratio: math.Inf(1)}, true
		}
		return cand{tile: i, ratio: dc / db}, true
	}
	for {
		best := cand{tile: -1, ratio: -1}
		for i := range tiles {
			c, ok := better(i)
			if !ok {
				continue
			}
			l := a[i]
			db := tiles[i].Bits[l-1] - tiles[i].Bits[l]
			if spent+db > budget {
				continue
			}
			if c.ratio > best.ratio {
				best = c
			}
		}
		if best.tile < 0 {
			return a
		}
		l := a[best.tile]
		spent += tiles[best.tile].Bits[l-1] - tiles[best.tile].Bits[l]
		a[best.tile] = l - 1
	}
}

// paretoState is a partial assignment on the (bits, cost) plane.
type paretoState struct {
	bits, cost float64
	parent     int         // index into the previous frontier
	level      codec.Level // level chosen for the current tile
}

// AllocatePruned is the paper's enumeration with dominance pruning: it
// sweeps tiles one at a time, extending every non-dominated partial
// assignment by each level and discarding assignments that another
// assignment beats on both total size and total distortion (§6.1). The
// frontier is capped at maxFrontier states by bits-bucket quantization,
// which keeps the search polynomial while staying within a hair of the
// exact optimum (≤0.5% extra distortion at the default cap on
// 30–72-tile instances); pass 0 for the default cap.
func AllocatePruned(tiles []TileChoice, budget float64, maxFrontier int) Allocation {
	if maxFrontier <= 0 {
		maxFrontier = 1024
	}
	n := len(tiles)
	if n == 0 {
		return nil
	}
	frontiers := make([][]paretoState, n)
	cur := []paretoState{{bits: 0, cost: 0, parent: -1}}
	for i := 0; i < n; i++ {
		var next []paretoState
		for pi, st := range cur {
			for l := 0; l < codec.NumLevels; l++ {
				b := st.bits + tiles[i].Bits[l]
				if b > budget && l != codec.NumLevels-1 {
					// Over budget: only the lowest level remains viable
					// as a fallback path.
					continue
				}
				next = append(next, paretoState{
					bits:   b,
					cost:   st.cost + tiles[i].Cost[l],
					parent: pi,
					level:  codec.Level(l),
				})
			}
		}
		next = pruneDominated(next, maxFrontier)
		frontiers[i] = next
		cur = next
	}
	// Pick the best final state within budget; if none fits (budget
	// below even the all-lowest size), fall back to all-lowest.
	bestIdx := -1
	bestCost := math.Inf(1)
	for i, st := range cur {
		if st.bits <= budget && st.cost < bestCost {
			bestCost = st.cost
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return lowestLevels(n)
	}
	// Reconstruct.
	a := make(Allocation, n)
	idx := bestIdx
	for i := n - 1; i >= 0; i-- {
		st := frontiers[i][idx]
		a[i] = st.level
		idx = st.parent
	}
	return a
}

// pruneDominated keeps only Pareto-optimal states (no other state has
// both fewer bits and lower cost), then, if still over cap, thins by
// keeping the cheapest state per bits bucket.
func pruneDominated(states []paretoState, cap int) []paretoState {
	if len(states) == 0 {
		return states
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].bits != states[j].bits {
			return states[i].bits < states[j].bits
		}
		return states[i].cost < states[j].cost
	})
	out := states[:0]
	bestCost := math.Inf(1)
	for _, st := range states {
		if st.cost < bestCost-1e-12 {
			out = append(out, st)
			bestCost = st.cost
		}
	}
	if len(out) <= cap {
		return out
	}
	lo, hi := out[0].bits, out[len(out)-1].bits
	span := hi - lo
	if span <= 0 {
		return out[:1]
	}
	thinned := out[:0]
	lastBucket := -1
	for _, st := range out {
		b := int(float64(cap-1) * (st.bits - lo) / span)
		if b != lastBucket {
			thinned = append(thinned, st)
			lastBucket = b
		}
	}
	return thinned
}

// AllocateExhaustive brute-forces all level combinations; it is
// exponential and intended only for small instances in tests and the
// pruning benchmark. It returns an error for more than 10 tiles.
func AllocateExhaustive(tiles []TileChoice, budget float64) (Allocation, error) {
	n := len(tiles)
	if n > 10 {
		return nil, fmt.Errorf("abr: exhaustive search infeasible for %d tiles", n)
	}
	best := lowestLevels(n)
	bestCost := math.Inf(1)
	bestFits := false
	a := make(Allocation, n)
	var rec func(i int, bits, cost float64)
	rec = func(i int, bits, cost float64) {
		if bits > budget {
			return
		}
		if i == n {
			if cost < bestCost {
				bestCost = cost
				copy(best, a)
				bestFits = true
			}
			return
		}
		for l := 0; l < codec.NumLevels; l++ {
			a[i] = codec.Level(l)
			rec(i+1, bits+tiles[i].Bits[l], cost+tiles[i].Cost[l])
		}
	}
	rec(0, 0, 0)
	if !bestFits {
		return lowestLevels(n), nil
	}
	return best, nil
}
