package sim

import (
	"pano/internal/abr"
	"sync"
	"testing"

	"pano/internal/manifest"
	"pano/internal/nettrace"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/viewport"
)

type fixtureT struct {
	video   *scene.Video
	traces  []*viewport.Trace
	pano    *manifest.Video
	uniform *manifest.Video
	whole   *manifest.Video
}

var (
	fxOnce sync.Once
	fx     fixtureT
)

func fixture(t *testing.T) *fixtureT {
	t.Helper()
	fxOnce.Do(func() {
		v := scene.Generate(scene.Sports, 23, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 8})
		var trs []*viewport.Trace
		for i := 0; i < 4; i++ {
			trs = append(trs, viewport.Synthesize(v, uint64(i+1), viewport.DefaultSynthesizeOpts()))
		}
		pano, err := provider.Preprocess(v, trs, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		cfg := provider.DefaultConfig()
		cfg.Mode = provider.ModeUniform
		uni, err := provider.Preprocess(v, trs, cfg)
		if err != nil {
			panic(err)
		}
		cfg.Mode = provider.ModeWhole
		whole, err := provider.Preprocess(v, trs, cfg)
		if err != nil {
			panic(err)
		}
		fx = fixtureT{video: v, traces: trs, pano: pano, uniform: uni, whole: whole}
	})
	return &fx
}

// testLink returns a link at the given fraction of the fixture video's
// top-level bitrate (1.0 ≈ just enough for max quality on average).
func testLink(f *fixtureT, frac float64) *nettrace.Link {
	return ScaledLink(f.pano, frac, 5)
}

func TestRunProducesSaneResult(t *testing.T) {
	f := fixture(t)
	res, err := Run(f.pano, f.traces[0], testLink(f, 0.5), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "pano" {
		t.Errorf("system = %q", res.System)
	}
	if len(res.PerChunkPSPNR) != f.pano.NumChunks() {
		t.Fatalf("per-chunk series length %d", len(res.PerChunkPSPNR))
	}
	if res.MeanPSPNR <= 0 || res.MeanPSPNR > 100 {
		t.Errorf("mean PSPNR = %v", res.MeanPSPNR)
	}
	if res.BufferingRatio < 0 || res.BufferingRatio > 100 {
		t.Errorf("buffering ratio = %v", res.BufferingRatio)
	}
	if res.BandwidthMbps <= 0 {
		t.Errorf("bandwidth = %v", res.BandwidthMbps)
	}
	if res.StartupDelaySec <= 0 {
		t.Errorf("startup delay = %v", res.StartupDelaySec)
	}
	if res.MOS() < 1 || res.MOS() > 5 {
		t.Errorf("MOS = %d", res.MOS())
	}
}

func TestMoreBandwidthNeverHurts(t *testing.T) {
	f := fixture(t)
	cfg := DefaultConfig()
	lo, err := Run(f.pano, f.traces[0], testLink(f, 0.15), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(f.pano, f.traces[0], testLink(f, 2.0), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hi.MeanPSPNR < lo.MeanPSPNR {
		t.Errorf("PSPNR at 3 Mbps (%v) below 0.4 Mbps (%v)", hi.MeanPSPNR, lo.MeanPSPNR)
	}
	if hi.StallSec > lo.StallSec+0.5 {
		t.Errorf("more bandwidth increased stalls: %v vs %v", hi.StallSec, lo.StallSec)
	}
}

func TestPanoBeatsBaselinesOnQuality(t *testing.T) {
	// The headline result (Figures 1 and 15): at the same bandwidth,
	// Pano delivers higher perceived quality than the viewport-driven
	// baseline and the whole-video reference, averaged across users.
	f := fixture(t)
	cfg := DefaultConfig()
	cfg.Scene = f.video // pixel-ground-truth scoring, as in §8
	var panoSum, flareSum, wholeSum float64
	for _, tr := range f.traces {
		link := testLink(f, 0.3)
		p, err := Run(f.pano, tr, link, player.NewPanoPlanner(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fl, err := Run(f.uniform, tr, link, player.NewViewportPlanner("flare"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Run(f.pano, tr, link, player.WholePlanner{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		panoSum += p.MeanPSPNR
		flareSum += fl.MeanPSPNR
		wholeSum += w.MeanPSPNR
	}
	n := float64(len(f.traces))
	if panoSum/n <= flareSum/n {
		t.Errorf("pano PSPNR %.2f not above flare %.2f", panoSum/n, flareSum/n)
	}
	if panoSum/n <= wholeSum/n {
		t.Errorf("pano PSPNR %.2f not above whole-video %.2f", panoSum/n, wholeSum/n)
	}
}

func TestViewNoiseDegradesGracefully(t *testing.T) {
	// Figure 16(c): quality decays with viewpoint noise but does not
	// collapse.
	f := fixture(t)
	prev := 200.0
	for _, noise := range []float64{0, 40, 120} {
		cfg := DefaultConfig()
		cfg.ViewNoiseDeg = noise
		cfg.Seed = 7
		res, err := Run(f.pano, f.traces[1], testLink(f, Trace1Frac), player.NewPanoPlanner(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanPSPNR > prev+3 { // small tolerance: noise is random
			t.Errorf("PSPNR rose from %v to %v as noise grew to %v", prev, res.MeanPSPNR, noise)
		}
		prev = res.MeanPSPNR
	}
}

func TestBWErrorTolerated(t *testing.T) {
	f := fixture(t)
	base, err := Run(f.pano, f.traces[2], testLink(f, Trace1Frac), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BWErrorFrac = 0.3
	noisy, err := Run(f.pano, f.traces[2], testLink(f, Trace1Frac), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 30% prediction error should cost quality or buffering, not crash
	// the session.
	if noisy.MeanPSPNR > base.MeanPSPNR+5 {
		t.Errorf("bandwidth error improved quality implausibly: %v vs %v", noisy.MeanPSPNR, base.MeanPSPNR)
	}
}

func TestEstimationTracksActual(t *testing.T) {
	// Figure 16(a) at zero noise: the client's PSPNR estimate should be
	// close to delivered quality most of the time.
	f := fixture(t)
	res, err := Run(f.pano, f.traces[0], testLink(f, Trace1Frac), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	for i := range res.PerChunkPSPNR {
		d := res.PerChunkPSPNR[i] - res.PerChunkEstPSPNR[i]
		if d < 0 {
			d = -d
		}
		if d < 15 {
			within++
		}
	}
	if frac := float64(within) / float64(len(res.PerChunkPSPNR)); frac < 0.6 {
		t.Errorf("only %.0f%% of estimates within 15 dB", frac*100)
	}
}

func TestBOLAControllerRuns(t *testing.T) {
	f := fixture(t)
	cfg := DefaultConfig()
	cfg.Controller = abr.NewBOLA(cfg.BufferTargetSec + 1)
	res, err := Run(f.pano, f.traces[0], testLink(f, 0.3), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSPNR <= 0 {
		t.Errorf("BOLA session PSPNR = %v", res.MeanPSPNR)
	}
	// BOLA is buffer-driven: it should also survive a starved link.
	starved, err := Run(f.pano, f.traces[0], testLink(f, 0.05), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if starved.BufferingRatio < 0 || starved.BufferingRatio > 100 {
		t.Errorf("buffering = %v", starved.BufferingRatio)
	}
}

func TestRunRejectsEmptyManifest(t *testing.T) {
	f := fixture(t)
	if _, err := Run(&manifest.Video{W: 10, H: 10, FPS: 30, ChunkSec: 1}, f.traces[0], testLink(f, 0.5), player.NewPanoPlanner(), DefaultConfig()); err == nil {
		t.Error("empty manifest should error")
	}
}

func TestBufferTargetTradesQualityForSafety(t *testing.T) {
	// Larger buffer targets (the {1,2,3} s sweep of Figure 15) should
	// not increase stalls.
	f := fixture(t)
	var prevStall = -1.0
	for _, target := range []float64{1, 3} {
		cfg := DefaultConfig()
		cfg.BufferTargetSec = target
		res, err := Run(f.pano, f.traces[3], testLink(f, 0.35), player.NewPanoPlanner(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prevStall >= 0 && res.StallSec > prevStall+1.0 {
			t.Errorf("stalls grew from %v to %v with larger buffer", prevStall, res.StallSec)
		}
		prevStall = res.StallSec
	}
}
