package sim

import (
	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/nettrace"
)

// RateForLevel returns the video's average bitrate in bits/second when
// every tile of every chunk is encoded at level l.
func RateForLevel(m *manifest.Video, l codec.Level) float64 {
	if m.NumChunks() == 0 {
		return 0
	}
	var bits float64
	for k := 0; k < m.NumChunks(); k++ {
		bits += m.ChunkBits(k, l)
	}
	return bits / m.DurationSec()
}

// ScaledLink builds an LTE-like emulated link whose mean throughput is
// frac times the video's top-level bitrate. The paper's two cellular
// traces (0.71 and 1.05 Mbps against 2880x1440 x264 video) sit in the
// band where the top level is not always affordable but the lowest
// level never stalls; this helper reproduces that operating point for
// the simulator's synthetic videos, whose absolute bitrates are smaller
// than x264's (see DESIGN.md's substitution table).
func ScaledLink(m *manifest.Video, frac float64, seed uint64) *nettrace.Link {
	top := RateForLevel(m, 0)
	target := frac * top / 1e6
	dur := int(m.DurationSec())
	if dur < 60 {
		dur = 60
	}
	return nettrace.NewLink(nettrace.SynthesizeLTE(seed, 4*dur, target))
}

// Paper-equivalent operating fractions for the two evaluation traces:
// Trace #1 corresponds to the 0.71 Mbps link, Trace #2 to 1.05 Mbps.
// The paper streams 2880×1440 x264 video over these links, i.e. the
// link affords well under a third of the top encoding rate — a heavily
// constrained regime where spatial quality allocation is decisive.
const (
	Trace1Frac = 0.18
	Trace2Frac = 0.30
)
