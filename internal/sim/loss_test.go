package sim

import (
	"testing"

	"pano/internal/obs"
	"pano/internal/player"
)

func TestTileLossDegradesAndSkips(t *testing.T) {
	f := fixture(t)
	clean, err := Run(f.pano, f.traces[0], testLink(f, 0.5), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.TileLossRate = 0.3
	cfg.Seed = 7
	cfg.Obs = reg
	lossy, err := Run(f.pano, f.traces[0], testLink(f, 0.5), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.DegradedTiles == 0 || lossy.SkippedTiles == 0 {
		t.Fatalf("30%% loss produced degraded=%d skipped=%d", lossy.DegradedTiles, lossy.SkippedTiles)
	}
	if lossy.TotalBits >= clean.TotalBits {
		t.Errorf("lost tiles still billed: %v bits vs clean %v", lossy.TotalBits, clean.TotalBits)
	}
	if lossy.MeanPSPNR >= clean.MeanPSPNR {
		t.Errorf("loss did not hurt quality: %v vs clean %v", lossy.MeanPSPNR, clean.MeanPSPNR)
	}
	if got := reg.CounterValue("pano_sim_tiles_skipped_total"); got != float64(lossy.SkippedTiles) {
		t.Errorf("skipped counter %v, result has %d", got, lossy.SkippedTiles)
	}
	if got := reg.CounterValue("pano_sim_tiles_degraded_total"); got != float64(lossy.DegradedTiles) {
		t.Errorf("degraded counter %v, result has %d", got, lossy.DegradedTiles)
	}
}

func TestTileLossDeterministic(t *testing.T) {
	f := fixture(t)
	cfg := DefaultConfig()
	cfg.TileLossRate = 0.2
	cfg.Seed = 11
	a, err := Run(f.pano, f.traces[1], testLink(f, 0.5), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(f.pano, f.traces[1], testLink(f, 0.5), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DegradedTiles != b.DegradedTiles || a.SkippedTiles != b.SkippedTiles ||
		a.MeanPSPNR != b.MeanPSPNR || a.TotalBits != b.TotalBits {
		t.Errorf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestTileLossZeroIsIdentical(t *testing.T) {
	f := fixture(t)
	base, err := Run(f.pano, f.traces[2], testLink(f, 0.5), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TileLossRate = 0
	cfg.Seed = 99 // must be irrelevant with the model off
	off, err := Run(f.pano, f.traces[2], testLink(f, 0.5), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.MeanPSPNR != base.MeanPSPNR || off.TotalBits != base.TotalBits ||
		off.DegradedTiles != 0 || off.SkippedTiles != 0 {
		t.Errorf("disabled loss model changed the session:\n  %+v\n  %+v", base, off)
	}
	for k := range base.PerChunkAlloc {
		for i := range base.PerChunkAlloc[k] {
			if base.PerChunkAlloc[k][i] != off.PerChunkAlloc[k][i] {
				t.Fatalf("chunk %d tile %d alloc differs", k, i)
			}
		}
	}
}
