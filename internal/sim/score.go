package sim

import (
	"fmt"
	"math"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/quality"
	"pano/internal/scene"
	"pano/internal/tiling"
	"pano/internal/viewport"
)

// pixelFramePSPNR scores the delivered quality of chunk k from actual
// pixels, over the whole panorama, exactly as Equation 1 and the §6.1
// objective define PSPNR: it renders the chunk's mid frame, applies
// each unit cell's delivered quantization (the QP of the manifest tile
// covering it), and computes the perceptible error against the
// ground-truth content JND scaled by the cell's true action ratio. The
// viewpoint enters only through the factors — relative speed, DoF
// difference to the focused object, recent luminance change — never as
// a visibility mask.
//
// Because the same pixels at the same QP always produce the same
// distortion, the score is completely independent of how a system tiled
// the video — it measures what was delivered, not what the manifest
// claims.
func pixelFramePSPNR(m *manifest.Video, v *scene.Video, k int, alloc abr.Allocation, tr *viewport.Trace, prof *jnd.Profile, enc *codec.Encoder, cache *jnd.FieldCache) float64 {
	tMid := (float64(k) + 0.5) * m.ChunkSec
	center := tr.At(tMid)
	vpSpeed := tr.SpeedAt(tMid)
	focusDoF := v.DepthAt(center, tMid)
	lumaSwing := maxLumaSwing(v, tr, tMid)

	fidx := int(tMid * float64(v.FPS))
	if fidx >= v.Frames() {
		fidx = v.Frames() - 1
	}
	orig := v.RenderFrame(fidx)
	// Content-JND fields depend only on the rendered original, so the
	// cache key is (video, frame); rendering is deterministic.
	cacheKey := fmt.Sprintf("%s/f%d", v.Name, fidx)

	g := geom.Frame{W: m.W, H: m.H}
	cells := tiling.Grid12x24.Rects(m.W, m.H)

	tileAt := func(x, y int) int {
		for i := range m.Chunks[k].Tiles {
			if m.Chunks[k].Tiles[i].Rect.Contains(x, y) {
				return i
			}
		}
		return 0
	}

	var num, den float64
	for _, cell := range cells {
		cx, cy := (cell.X0+cell.X1)/2, (cell.Y0+cell.Y1)/2
		a := g.ToAngle(cx, cy)
		var objSpeed, depth float64
		if o := v.ObjectAt(a, tMid); o != nil {
			objSpeed = o.SpeedDegS()
			depth = o.Depth
		} else {
			depth = v.BgDepthAt(a)
		}
		ratio := prof.ActionRatio(jnd.Factors{
			SpeedDegS:  math.Abs(vpSpeed - objSpeed),
			DoFDiff:    math.Abs(depth - focusDoF),
			LumaChange: lumaSwing,
		})

		qp := alloc[tileAt(cx, cy)].QP()
		encCell, err := enc.DistortRegion(orig, cell, qp)
		if err != nil {
			continue
		}
		origCell, err := orig.Region(cell)
		if err != nil {
			continue
		}
		field := quality.ScaleField(cache.ContentField(cacheKey, orig, cell), ratio)
		pmse, err := quality.PMSE(origCell, encCell, field)
		if err != nil {
			continue
		}
		num += float64(cell.Area()) * pmse
		den += float64(cell.Area())
	}
	if den == 0 {
		return 0
	}
	return quality.PSPNRFromPMSE(num / den)
}

// maxLumaSwing is the ground-truth luminance change of the viewport
// over the preceding 5 s window.
func maxLumaSwing(v *scene.Video, tr *viewport.Trace, t float64) float64 {
	ref := v.LumaAt(tr.At(t), t)
	var swing float64
	for u := math.Max(0, t-5); u <= t+1e-9; u += 5 * viewport.RefreshInterval {
		if d := math.Abs(v.LumaAt(tr.At(u), u) - ref); d > swing {
			swing = d
		}
	}
	return swing
}
