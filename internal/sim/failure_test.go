package sim

import (
	"math"
	"testing"

	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/nettrace"
	"pano/internal/player"
)

// TestSurvivesOutageLink injects a link that is almost entirely outage:
// the session must complete with finite accounting and heavy stalls,
// never hang or panic.
func TestSurvivesOutageLink(t *testing.T) {
	f := fixture(t)
	outage := &nettrace.Trace{Mbps: []float64{0.001}}
	res, err := Run(f.pano, f.traces[0], nettrace.NewLink(outage), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MeanPSPNR) || math.IsInf(res.MeanPSPNR, 0) {
		t.Fatalf("PSPNR = %v", res.MeanPSPNR)
	}
	if res.StallSec <= 0 {
		t.Error("outage link should stall")
	}
	if res.BufferingRatio <= 0 || res.BufferingRatio > 100 {
		t.Errorf("buffering ratio = %v", res.BufferingRatio)
	}
	// Under starvation every chunk should collapse to the lowest level.
	for k, alloc := range res.PerChunkAlloc {
		if k == 0 {
			continue // cold start is lowest by construction
		}
		for _, l := range alloc {
			if l != codec.Level(codec.NumLevels-1) {
				// MPC may briefly overshoot right after a burst; allow
				// non-lowest but verify it never picks the top level.
				if l == 0 {
					t.Fatalf("chunk %d picked top level during outage", k)
				}
			}
		}
	}
}

// TestSurvivesBurstyLink alternates outage and plenty.
func TestSurvivesBurstyLink(t *testing.T) {
	f := fixture(t)
	top := RateForLevel(f.pano, 0) / 1e6
	var mbps []float64
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			mbps = append(mbps, 0.01)
		} else {
			mbps = append(mbps, 3*top)
		}
	}
	res, err := Run(f.pano, f.traces[1], nettrace.NewLink(&nettrace.Trace{Mbps: mbps}),
		player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSPNR <= 0 {
		t.Errorf("PSPNR = %v", res.MeanPSPNR)
	}
}

// TestExtremeNoiseStillCompletes pushes viewpoint noise beyond the
// paper's sweep.
func TestExtremeNoiseStillCompletes(t *testing.T) {
	f := fixture(t)
	cfg := DefaultConfig()
	cfg.ViewNoiseDeg = 720
	cfg.Seed = 3
	res, err := Run(f.pano, f.traces[2], testLink(f, 0.4), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerChunkPSPNR) != f.pano.NumChunks() {
		t.Error("session truncated")
	}
}

// TestScaledLinkOperatingPoint sanity-checks the link helper.
func TestScaledLinkOperatingPoint(t *testing.T) {
	f := fixture(t)
	link := ScaledLink(f.pano, 0.5, 1)
	want := 0.5 * RateForLevel(f.pano, 0)
	if got := link.MeanThroughput(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("link mean %v, want %v", got, want)
	}
	if RateForLevel(&manifest.Video{}, 0) != 0 {
		t.Error("empty manifest rate should be 0")
	}
}
