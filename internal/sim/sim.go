// Package sim runs trace-driven end-to-end streaming sessions (§8.1):
// a manifest (the encoded video), a user's viewpoint trace, a cellular
// bandwidth trace, and a quality-adaptation planner in a closed loop of
// MPC bitrate control, tile-level allocation, download timing, buffer
// dynamics, and perceived-quality accounting.
//
// The simulator decides with what the client would know (predicted
// viewpoint, lower-bound factors, harmonic-mean bandwidth), and scores
// with ground truth (the real trace, the real factors), so prediction
// error hurts exactly as it would in a deployment.
package sim

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/mathx"
	"pano/internal/nettrace"
	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/quality"
	"pano/internal/scene"
	"pano/internal/trace"
	"pano/internal/viewport"
)

// Config tunes a session.
type Config struct {
	// BufferTargetSec is the MPC buffer target (the paper tests 1-3 s).
	BufferTargetSec float64
	// MaxBufferSec caps prefetch (default 2x target).
	MaxBufferSec float64
	// Profile is the 360JND profile used for scoring (default
	// jnd.Default()).
	Profile *jnd.Profile
	// ViewNoiseDeg adds uniform random viewpoint shifts in [0, n]
	// degrees to the trace the *client* sees (§8.3 stress test);
	// scoring always uses the clean trace.
	ViewNoiseDeg float64
	// BWErrorFrac perturbs the client's bandwidth prediction by
	// ±frac, alternating sign per chunk (§8.3's throughput error).
	BWErrorFrac float64
	// Seed drives the noise.
	Seed uint64
	// TileLossRate is the probability that a tile's fetch permanently
	// fails in the simulated transport (all retries exhausted). A lost
	// tile follows the client's degradation ladder (§7): it is re-fetched
	// at the lowest level; if that draw fails too the tile is skipped and
	// scored as stale content. 0 disables the model entirely (no RNG
	// draws), keeping existing sessions bit-identical.
	TileLossRate float64
	// Scene, when set, enables ground-truth quality scoring at unit-
	// tile granularity (independent of the system's tiling). Without
	// it, scoring falls back to the manifest's own tiles.
	Scene *scene.Video
	// Controller overrides the chunk-level bitrate algorithm (default:
	// the §6.1 MPC at BufferTargetSec; abr.NewBOLA is the alternative).
	Controller abr.Controller
	// FieldCache, when set, caches ground-truth content-JND fields
	// across chunks and sessions, keyed by video, frame and rect —
	// scoring many sessions of the same video stops recomputing
	// C(i,j). Hit/miss counters register in the cache's own registry
	// (see jnd.NewFieldCache); nil recomputes every field.
	FieldCache *jnd.FieldCache
	// Obs receives per-chunk QoE metrics (PSPNR, rebuffer seconds,
	// bits, level decisions) and session gauges; nil disables
	// instrumentation at zero cost.
	Obs *obs.Registry
	// Log receives structured per-chunk and session-summary events;
	// nil disables them.
	Log *obs.EventLog
	// Trace, when set, records the session as a span tree with the same
	// taxonomy as the HTTP client — session → chunk → {estimate, mpc,
	// assign, fetch, stitch} — so simulated and real sessions decompose
	// identically in Perfetto. nil disables tracing at zero cost.
	Trace *trace.Tracer
}

// DefaultConfig returns a 2 s buffer target session.
func DefaultConfig() Config {
	return Config{BufferTargetSec: 2}
}

func (c *Config) fillDefaults() {
	if c.BufferTargetSec == 0 {
		c.BufferTargetSec = 2
	}
	if c.MaxBufferSec == 0 {
		// Cap prefetch at one chunk beyond the target: deeper buffers
		// stretch the viewpoint-prediction horizon, which hurts every
		// viewport-aware scheme (§2.1's prefetch tension).
		c.MaxBufferSec = c.BufferTargetSec + 1
	}
	if c.Profile == nil {
		c.Profile = jnd.Default()
	}
}

// Result summarizes one session.
type Result struct {
	System string
	// MeanPSPNR is the session-average viewport PSPNR (dB).
	MeanPSPNR float64
	// BufferingRatio is stall time over total watch time, percent.
	BufferingRatio float64
	// BandwidthMbps is total downloaded bits over the video duration.
	BandwidthMbps float64
	// StartupDelaySec is the first chunk's download time.
	StartupDelaySec float64
	// StallSec is the total rebuffering time.
	StallSec float64
	// PerChunkPSPNR is the delivered viewport PSPNR per chunk.
	PerChunkPSPNR []float64
	// PerChunkEstPSPNR is what the client estimated while planning —
	// the gap to PerChunkPSPNR is Figure 16(a)'s estimation error.
	PerChunkEstPSPNR []float64
	// PerChunkAlloc records the chosen level per tile per chunk, so
	// alternative metrics (plain PSNR, traditional PSPNR) can be
	// scored on the same delivered session afterwards.
	PerChunkAlloc []abr.Allocation
	// TotalBits is the session's downloaded volume.
	TotalBits float64
	// DegradedTiles and SkippedTiles count the degradation-ladder
	// outcomes under Config.TileLossRate (both 0 when the loss model is
	// off).
	DegradedTiles int
	SkippedTiles  int
	// TraceID is the hex id of the session's trace when Config.Trace is
	// set and the session was sampled ("" otherwise).
	TraceID string
}

// MOS returns the Table 3 opinion-score band of the session quality.
func (r *Result) MOS() int { return quality.MOSFromPSPNR(r.MeanPSPNR) }

// Run simulates one full playback session.
func Run(m *manifest.Video, tr *viewport.Trace, link *nettrace.Link, pl player.Planner, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if m.NumChunks() == 0 {
		return nil, fmt.Errorf("sim: empty manifest")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	clientTrace := tr
	if cfg.ViewNoiseDeg > 0 {
		clientTrace = tr.AddNoise(cfg.ViewNoiseDeg, mathx.NewRNG(cfg.Seed+0x5eed))
	}
	scoreEnc := codec.NewEncoder()
	est := player.NewEstimator()
	mpc := abr.NewMPC(cfg.BufferTargetSec)
	mpc.Obs = cfg.Obs
	var ctrl abr.Controller = mpc
	if cfg.Controller != nil {
		ctrl = cfg.Controller
	}
	bw := abr.NewBandwidthPredictor()
	bw.Obs = cfg.Obs

	res := &Result{System: pl.Name()}
	pl = player.Instrument(pl, cfg.Obs)

	// QoE instruments (all no-ops when cfg.Obs is nil).
	chunkPSPNR := cfg.Obs.Histogram("pano_sim_chunk_pspnr_db",
		"delivered per-chunk viewport PSPNR", quality.PSPNRBuckets)
	chunksTotal := cfg.Obs.Counter("pano_sim_chunks_total", "chunks simulated")
	rebufTotal := cfg.Obs.Counter("pano_sim_rebuffer_seconds_total", "total stall seconds")
	bitsTotal := cfg.Obs.Counter("pano_sim_bits_total", "bits downloaded")
	dlSeconds := cfg.Obs.Histogram("pano_sim_chunk_download_seconds",
		"per-chunk download time on the simulated link", nil)
	bufGauge := cfg.Obs.Gauge("pano_sim_buffer_sec", "playback buffer after each chunk")
	degradedTotal := cfg.Obs.Counter("pano_sim_tiles_degraded_total",
		"tiles delivered at the lowest level after simulated transport loss")
	skippedTotal := cfg.Obs.Counter("pano_sim_tiles_skipped_total",
		"tiles lost after the full degradation ladder (scored as stale)")
	var lossRNG *mathx.RNG
	if cfg.TileLossRate > 0 {
		lossRNG = mathx.NewRNG(cfg.Seed + 0x10e55)
	}
	sess := cfg.Log.Session(
		"system", pl.Name(), "video", m.Name,
		"chunks", m.NumChunks(), "tiles", len(m.Chunks[0].Tiles))
	ctx, sessSpan := cfg.Trace.Start(context.Background(), "session",
		trace.A("component", "sim"), trace.A("planner", pl.Name()),
		trace.A("video", m.Name))
	res.TraceID = sessSpan.TraceHex()
	var wall, buffer float64
	prevLevel := codec.Level(-1)
	chunkSec := m.ChunkSec

	for k := 0; k < m.NumChunks(); k++ {
		cctx, chunkSpan := trace.StartSpan(ctx, "chunk", trace.A("chunk", k))
		nowMedia := math.Max(0, float64(k)*chunkSec-buffer)

		// Phase: bandwidth + viewpoint estimation (the client's view of
		// the world; the possibly-noisy trace, §8.3).
		_, eSpan := trace.StartSpan(cctx, "estimate")
		pred := bw.Predict()
		view := est.View(m, clientTrace, k, nowMedia)
		eSpan.Annotate("pred_bps", pred)
		eSpan.End()

		// Chunk-level bitrate via MPC.
		var budget float64
		if pred == 0 {
			// Cold start: lowest level.
			budget = m.ChunkBits(k, codec.Level(codec.NumLevels-1))
			prevLevel = codec.Level(codec.NumLevels - 1)
		} else {
			if cfg.BWErrorFrac > 0 {
				sign := 1.0
				if k%2 == 1 {
					sign = -1
				}
				pred *= 1 + sign*cfg.BWErrorFrac
			}
			horizon := make([]abr.ChunkPlan, 0, mpc.Horizon)
			for j := k; j < k+mpc.Horizon && j < m.NumChunks(); j++ {
				var p abr.ChunkPlan
				for l := 0; l < codec.NumLevels; l++ {
					p.Bits[l] = m.ChunkBits(j, codec.Level(l))
					// Normalize dB to MOS-like units so the rebuffer
					// and buffer penalties bind (a level step is worth
					// ~1-2 units, far less than a second of stall).
					p.Quality[l] = meanRefPSPNR(m, j, codec.Level(l)) / 10
				}
				horizon = append(horizon, p)
			}
			lv := pickLevelCtx(cctx, ctrl, buffer, pred, chunkSec, prevLevel, horizon)
			budget = m.ChunkBits(k, lv)
			prevLevel = lv
			// The level menu is coarse; fill the remaining predicted
			// capacity so the tile allocator can spend what the link
			// actually offers (identically for every system).
			capacity := 0.9 * pred * (chunkSec + math.Max(0, buffer-cfg.BufferTargetSec))
			if capacity > budget {
				budget = math.Min(capacity, m.ChunkBits(k, 0))
			}
		}

		// Tile-level allocation on the client's (possibly noisy) view.
		alloc := player.PlanWithContext(cctx, pl, m, k, view, budget)

		// Phase: the simulated "fetch" — transport losses plus the
		// link-model download. Wall time here is trivial; the simulated
		// outcome rides on the span as annotations.
		_, fSpan := trace.StartSpan(cctx, "fetch")

		// Transport losses: walk the ladder per tile (degrade to lowest,
		// then skip). Delivered levels and the stale mask drive both the
		// bit accounting and the quality scoring below.
		delivered, stale := alloc, []bool(nil)
		var degraded, skippedNow int
		if cfg.TileLossRate > 0 {
			delivered = append(abr.Allocation(nil), alloc...)
			stale = make([]bool, len(alloc))
			lowest := codec.Level(codec.NumLevels - 1)
			for i := range delivered {
				if lossRNG.Float64() >= cfg.TileLossRate {
					continue
				}
				if delivered[i] != lowest && lossRNG.Float64() >= cfg.TileLossRate {
					delivered[i] = lowest
					degraded++
					continue
				}
				delivered[i] = lowest
				stale[i] = true
				skippedNow++
			}
			res.DegradedTiles += degraded
			res.SkippedTiles += skippedNow
			degradedTotal.Add(float64(degraded))
			skippedTotal.Add(float64(skippedNow))
		}
		bits := deliveredBits(m, k, delivered, stale)

		// Download.
		dl := link.DownloadTime(wall, bits)
		wall += dl
		bw.Observe(bits / dl)
		var stall float64
		if k == 0 {
			res.StartupDelaySec = dl
		} else if dl > buffer {
			stall = dl - buffer
			res.StallSec += stall
		}
		buffer = math.Max(buffer-dl, 0) + chunkSec
		if buffer > cfg.MaxBufferSec {
			// Paced prefetch: wait without draining (playback continues
			// against the buffered media).
			wall += buffer - cfg.MaxBufferSec
			buffer = cfg.MaxBufferSec
		}
		res.TotalBits += bits
		fSpan.Annotate("bits", bits)
		fSpan.Annotate("download_sec", dl)
		fSpan.Annotate("tiles_degraded", degraded)
		fSpan.Annotate("tiles_skipped", skippedNow)
		fSpan.End()

		// Phase: stitch + quality scoring of the delivered frame.
		// The estimate uses the client's best-guess view (Figure 16a
		// measures this gap); the allocation above used the conservative
		// view.
		_, sSpan := trace.StartSpan(cctx, "stitch")
		guess := est.BestGuessView(m, clientTrace, k, nowMedia)
		var score float64
		if cfg.Scene != nil {
			// Pixel-accurate scoring has no staleness model; stale tiles
			// are already pinned to the lowest level in delivered, which
			// underestimates their distortion slightly.
			score = pixelFramePSPNR(m, cfg.Scene, k, delivered, tr, cfg.Profile, scoreEnc, cfg.FieldCache)
		} else {
			actual := est.ActualView(m, tr, k)
			score = player.FramePSPNRDegraded(m, k, delivered, stale, actual, cfg.Profile)
		}
		// The client's plan-time estimate predates any transport loss, so
		// it scores the planned allocation.
		estimated := player.FramePSPNR(m, k, alloc, guess, cfg.Profile)
		sSpan.Annotate("pspnr_db", score)
		sSpan.End()
		res.PerChunkPSPNR = append(res.PerChunkPSPNR, score)
		res.PerChunkEstPSPNR = append(res.PerChunkEstPSPNR, estimated)
		res.PerChunkAlloc = append(res.PerChunkAlloc, delivered)

		chunkPSPNR.Observe(score)
		chunksTotal.Inc()
		rebufTotal.Add(stall)
		bitsTotal.Add(bits)
		dlSeconds.ObserveExemplar(dl, chunkSpan.TraceHex())
		bufGauge.Set(buffer)
		if cfg.Obs != nil {
			cfg.Obs.Counter("pano_sim_level_decisions_total",
				"chunk-level bitrate decisions by level",
				obs.L("level", "L"+strconv.Itoa(int(prevLevel)))).Inc()
		}
		sess.Debug("chunk_done",
			"chunk", k, "level", int(prevLevel), "bits", bits,
			"download_sec", dl, "stall_sec", stall, "buffer_sec", buffer,
			"pspnr_db", score, "est_pspnr_db", estimated,
			"tiles_degraded", degraded, "tiles_skipped", skippedNow)
		chunkSpan.Annotate("bits", bits)
		chunkSpan.Annotate("stall_sec", stall)
		chunkSpan.Annotate("buffer_sec", buffer)
		chunkSpan.End()
	}

	dur := m.DurationSec()
	var sum float64
	for _, p := range res.PerChunkPSPNR {
		sum += p
	}
	res.MeanPSPNR = sum / float64(len(res.PerChunkPSPNR))
	res.BufferingRatio = 100 * res.StallSec / (dur + res.StallSec)
	res.BandwidthMbps = res.TotalBits / dur / 1e6

	sessSpan.Annotate("mean_pspnr_db", res.MeanPSPNR)
	sessSpan.Annotate("chunks", len(res.PerChunkPSPNR))
	sessSpan.Annotate("stall_sec", res.StallSec)
	sessSpan.End()
	cfg.Obs.Gauge("pano_sim_session_pspnr_db", "session mean viewport PSPNR").Set(res.MeanPSPNR)
	cfg.Obs.Gauge("pano_sim_session_mos", "Table 3 opinion-score band of the session").Set(float64(res.MOS()))
	sess.Info("session_summary",
		"status", "ok", "mean_pspnr_db", res.MeanPSPNR, "mos", res.MOS(),
		"buffering_pct", res.BufferingRatio, "stall_sec", res.StallSec,
		"bandwidth_mbps", res.BandwidthMbps, "startup_sec", res.StartupDelaySec,
		"total_bits", res.TotalBits,
		"tiles_degraded", res.DegradedTiles, "tiles_skipped", res.SkippedTiles)
	return res, nil
}

// pickLevelCtx routes the chunk-level decision through the controller's
// PickLevelCtx when it has one (the MPC does, opening its own "mpc"
// span); plain controllers get wrapped in an "mpc" span here so the
// decision phase always appears in the trace.
func pickLevelCtx(ctx context.Context, c abr.Controller, bufferSec, predBWbps, chunkSec float64, prev codec.Level, horizon []abr.ChunkPlan) codec.Level {
	if cc, ok := c.(abr.ContextController); ok {
		return cc.PickLevelCtx(ctx, bufferSec, predBWbps, chunkSec, prev, horizon)
	}
	_, sp := trace.StartSpan(ctx, "mpc",
		trace.A("buffer_sec", bufferSec), trace.A("pred_bps", predBWbps))
	lv := c.PickLevel(bufferSec, predBWbps, chunkSec, prev, horizon)
	sp.Annotate("level", int(lv))
	sp.End()
	return lv
}

func allocBits(m *manifest.Video, k int, a abr.Allocation) float64 {
	var s float64
	for i, l := range a {
		s += m.Chunks[k].Tiles[i].Bits[l]
	}
	return s
}

// deliveredBits sums the bits of the tiles that actually arrived:
// skipped tiles contribute nothing (their retries' waste is not goodput,
// matching the client's retry-excluding throughput accounting).
func deliveredBits(m *manifest.Video, k int, a abr.Allocation, stale []bool) float64 {
	var s float64
	for i, l := range a {
		if stale != nil && stale[i] {
			continue
		}
		s += m.Chunks[k].Tiles[i].Bits[l]
	}
	return s
}

func meanRefPSPNR(m *manifest.Video, k int, l codec.Level) float64 {
	return player.MeanRefPSPNR(m, k, l)
}
