package sim

import (
	"math"
	"strings"
	"testing"

	"pano/internal/obs"
	"pano/internal/player"
)

// TestRunRecordsQoEMetrics asserts the registry agrees with the run's
// own Result: per-chunk PSPNR observations, rebuffer seconds, and
// downloaded bits.
func TestRunRecordsQoEMetrics(t *testing.T) {
	f := fixture(t)
	reg := obs.NewRegistry()
	el := obs.NewEventLog(nil, 256)
	cfg := DefaultConfig()
	cfg.Obs = reg
	cfg.Log = el
	res, err := Run(f.pano, f.traces[0], testLink(f, 0.35), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	n := len(res.PerChunkPSPNR)
	if got := reg.HistogramCount("pano_sim_chunk_pspnr_db"); got != uint64(n) {
		t.Errorf("pspnr observations %d, want %d", got, n)
	}
	var sum float64
	for _, p := range res.PerChunkPSPNR {
		sum += p
	}
	if got := reg.HistogramSum("pano_sim_chunk_pspnr_db"); math.Abs(got-sum) > 1e-6 {
		t.Errorf("pspnr sum %v, result per-chunk sum %v", got, sum)
	}
	if got := reg.CounterValue("pano_sim_chunks_total"); got != float64(n) {
		t.Errorf("chunks counter %v, want %d", got, n)
	}
	if got := reg.CounterValue("pano_sim_rebuffer_seconds_total"); math.Abs(got-res.StallSec) > 1e-9 {
		t.Errorf("rebuffer counter %v, result StallSec %v", got, res.StallSec)
	}
	if got := reg.CounterValue("pano_sim_bits_total"); math.Abs(got-res.TotalBits) > 1e-6 {
		t.Errorf("bits counter %v, result TotalBits %v", got, res.TotalBits)
	}
	if got := reg.GaugeValue("pano_sim_session_pspnr_db"); math.Abs(got-res.MeanPSPNR) > 1e-9 {
		t.Errorf("session pspnr gauge %v, result %v", got, res.MeanPSPNR)
	}
	if got := reg.GaugeValue("pano_sim_session_mos"); got != float64(res.MOS()) {
		t.Errorf("session mos gauge %v, result %d", got, res.MOS())
	}
	// ABR + planner instrumentation rode along.
	if got := reg.HistogramCount("pano_abr_decision_seconds"); got == 0 {
		t.Error("no ABR decision latency recorded")
	}
	if got := reg.HistogramCount("pano_planner_plan_seconds", obs.L("planner", "pano")); got != uint64(n) {
		t.Errorf("planner latency observations %d, want %d", got, n)
	}
	if got := reg.HistogramCount("pano_abr_bw_prediction_error_ratio"); got == 0 {
		t.Error("no bandwidth prediction error recorded")
	}

	// Session summary event carries the result's QoE.
	e, ok := el.Last("session_summary")
	if !ok {
		t.Fatal("no session_summary event")
	}
	if e.Str("status") != "ok" {
		t.Errorf("summary status %q", e.Str("status"))
	}
	if got := e.Attr("mean_pspnr_db").(float64); math.Abs(got-res.MeanPSPNR) > 1e-9 {
		t.Errorf("summary pspnr %v, result %v", got, res.MeanPSPNR)
	}

	// And the whole registry renders as valid exposition text.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "pano_sim_chunk_pspnr_db_bucket") {
		t.Error("exposition missing sim histogram")
	}
}

// TestRunNopRegistryUnchanged pins that an uninstrumented run produces
// the identical Result — observability must not perturb the simulation.
func TestRunNopRegistryUnchanged(t *testing.T) {
	f := fixture(t)
	plain, err := Run(f.pano, f.traces[1], testLink(f, 0.35), player.NewPanoPlanner(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Obs = obs.NewRegistry()
	cfg.Log = obs.NewEventLog(nil, 16)
	instr, err := Run(f.pano, f.traces[1], testLink(f, 0.35), player.NewPanoPlanner(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MeanPSPNR != instr.MeanPSPNR || plain.StallSec != instr.StallSec ||
		plain.TotalBits != instr.TotalBits {
		t.Errorf("instrumentation changed the result: %+v vs %+v", plain, instr)
	}
}
