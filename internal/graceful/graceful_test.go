package graceful

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestServeListenerDrains: SIGTERM while a request is in flight lets
// the response finish instead of severing the connection.
func TestServeListenerDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		io.WriteString(w, "complete")
	})

	done := make(chan error, 1)
	go func() { done <- ServeListener(ln, h, 5*time.Second) }()

	respc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			errc <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			errc <- err
			return
		}
		respc <- string(b)
	}()

	<-started // handler is mid-request
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let Shutdown begin
	close(release)                    // now let the handler finish

	select {
	case body := <-respc:
		if body != "complete" {
			t.Errorf("in-flight response body %q, want %q", body, "complete")
		}
	case err := <-errc:
		t.Fatalf("in-flight request severed during drain: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("response never arrived")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("clean drain returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListener did not return after drain")
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestServeListenerDrainTimeout: a handler that outlives the drain
// window gets cut off and Serve reports the deadline.
func TestServeListenerDrainTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})

	done := make(chan error, 1)
	go func() { done <- ServeListener(ln, h, 100*time.Millisecond) }()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()

	<-started
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != context.DeadlineExceeded {
			t.Errorf("overlong drain returned %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListener wedged past its drain deadline")
	}
}

// TestServeBadAddr: an unusable address is a plain error, not a hang.
func TestServeBadAddr(t *testing.T) {
	if err := Serve("256.256.256.256:0", http.NotFoundHandler(), time.Second); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
