// Package graceful runs an http.Server until SIGINT/SIGTERM, then
// drains in-flight requests instead of severing them — for a tile
// server, a kill signal mid-chunk would otherwise truncate media bodies
// and force every attached client down its retry ladder at once.
package graceful

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultDrain bounds how long Shutdown waits for in-flight responses.
const DefaultDrain = 10 * time.Second

// Stopper is anything with background work to halt once the HTTP
// server has drained — telemetry samplers, prefetchers, pollers. The
// telemetry.Sampler satisfies it directly.
type Stopper interface{ Stop() }

// Serve listens on addr and serves h until the process receives SIGINT
// or SIGTERM, then shuts down gracefully, waiting up to drain for
// in-flight requests (drain <= 0 selects DefaultDrain). After the
// drain, each stop is called in order — request handling has ceased by
// then, so stoppers never race in-flight traffic. It returns nil after
// a clean drain, context.DeadlineExceeded if the drain timed out
// (remaining connections were closed), or the listen error.
func Serve(addr string, h http.Handler, drain time.Duration, stop ...Stopper) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ln, h, drain, stop...)
}

// ServeListener is Serve over an existing listener (tests use it to
// learn the bound port before serving).
func ServeListener(ln net.Listener, h http.Handler, drain time.Duration, stop ...Stopper) error {
	if drain <= 0 {
		drain = DefaultDrain
	}
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	stopAll := func() {
		for _, s := range stop {
			if s != nil {
				s.Stop()
			}
		}
	}

	select {
	case err := <-errc:
		// Serve never returns nil; anything here is a real listen/accept
		// failure (Shutdown hasn't been called yet).
		stopAll()
		return err
	case <-sig:
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) {
			srv.Close()
		}
		<-errc // reap the Serve goroutine (returns ErrServerClosed)
		stopAll()
		return err
	}
}
