package geom

import "testing"

// FuzzRectIntersect pins the Rect clipping algebra for arbitrary —
// including inverted and far-out-of-range — rectangles: Intersect
// never panics, is commutative and idempotent, returns either the
// canonical empty Rect or a rectangle contained in both operands, and
// OverlapArea agrees with it.
func FuzzRectIntersect(f *testing.F) {
	f.Add(0, 0, 10, 10, 5, 5, 20, 20)
	f.Add(0, 0, 10, 10, 10, 10, 20, 20) // touching corner → empty
	f.Add(3, 4, 3, 9, 0, 0, 8, 8)       // zero-width operand
	f.Add(-5, -5, 5, 5, -1, -1, 1, 1)   // negative coords, containment
	f.Add(7, 2, 1, 9, 0, 0, 4, 4)       // inverted operand
	f.Add(-1000000, -1000000, 1000000, 1000000, -3, 7, 9, 8)
	f.Fuzz(func(t *testing.T, ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 int) {
		a := Rect{X0: ax0, Y0: ay0, X1: ax1, Y1: ay1}
		b := Rect{X0: bx0, Y0: by0, X1: bx1, Y1: by1}

		got := a.Intersect(b)
		if sym := b.Intersect(a); got != sym {
			t.Fatalf("Intersect not commutative: %v vs %v", got, sym)
		}
		if got.Empty() {
			if got != (Rect{}) {
				t.Fatalf("empty intersection not canonical: %v", got)
			}
		} else {
			contained := func(in, out Rect) bool {
				return in.X0 >= out.X0 && in.X1 <= out.X1 && in.Y0 >= out.Y0 && in.Y1 <= out.Y1
			}
			if !contained(got, a) || !contained(got, b) {
				t.Fatalf("intersection %v escapes %v ∩ %v", got, a, b)
			}
			if again := got.Intersect(got); again != got {
				t.Fatalf("Intersect not idempotent: %v → %v", got, again)
			}
			// Every corner pixel of the intersection is in both rects.
			for _, p := range [][2]int{
				{got.X0, got.Y0}, {got.X1 - 1, got.Y0},
				{got.X0, got.Y1 - 1}, {got.X1 - 1, got.Y1 - 1},
			} {
				if !a.Contains(p[0], p[1]) || !b.Contains(p[0], p[1]) {
					t.Fatalf("corner (%d,%d) of %v outside an operand", p[0], p[1], got)
				}
			}
		}
		if oa := a.OverlapArea(b); oa != got.Area() {
			t.Fatalf("OverlapArea %d != Intersect area %d", oa, got.Area())
		}
		if got.Area() < 0 {
			t.Fatalf("negative intersection area for %v ∩ %v", a, b)
		}
	})
}
