package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormYaw(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {180, -180}, {-180, -180}, {360, 0}, {-360, 0},
		{190, -170}, {-190, 170}, {540, -180}, {720.5, 0.5},
	}
	for _, c := range cases {
		if got := NormYaw(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormYaw(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormYawPropertyRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		y := NormYaw(x)
		return y >= -180 && y < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampPitch(t *testing.T) {
	if ClampPitch(95) != 90 || ClampPitch(-95) != -90 || ClampPitch(12) != 12 {
		t.Fatal("ClampPitch misbehaves")
	}
}

func TestYawDelta(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 10, 10}, {170, -170, 20}, {-170, 170, -20}, {10, 0, -10},
	}
	for _, c := range cases {
		if got := YawDelta(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("YawDelta(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGreatCircleDeg(t *testing.T) {
	a := Angle{Yaw: 0, Pitch: 0}
	b := Angle{Yaw: 90, Pitch: 0}
	if got := GreatCircleDeg(a, b); math.Abs(got-90) > 1e-6 {
		t.Errorf("equatorial quarter arc = %v, want 90", got)
	}
	c := Angle{Yaw: 0, Pitch: 90}
	if got := GreatCircleDeg(a, c); math.Abs(got-90) > 1e-6 {
		t.Errorf("pole arc = %v, want 90", got)
	}
	// Near the pole, yaw differences shrink.
	p1 := Angle{Yaw: 0, Pitch: 89}
	p2 := Angle{Yaw: 90, Pitch: 89}
	if got := GreatCircleDeg(p1, p2); got > 5 {
		t.Errorf("near-pole distance = %v, want small", got)
	}
}

func TestGreatCirclePropertySymmetricNonNegative(t *testing.T) {
	f := func(y1, p1, y2, p2 float64) bool {
		if anyBad(y1, p1, y2, p2) {
			return true
		}
		a := Angle{Yaw: y1, Pitch: p1}.Norm()
		b := Angle{Yaw: y2, Pitch: p2}.Norm()
		d1 := GreatCircleDeg(a, b)
		d2 := GreatCircleDeg(b, a)
		return d1 >= 0 && d1 <= 180+1e-9 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a := Angle{Yaw: 170, Pitch: 0}
	b := Angle{Yaw: -170, Pitch: 10}
	mid := Lerp(a, b, 0.5)
	if math.Abs(mid.Yaw-(-180)) > 1e-9 && math.Abs(mid.Yaw-180) > 1e-9 {
		t.Errorf("Lerp across seam yaw = %v, want ±180", mid.Yaw)
	}
	if math.Abs(mid.Pitch-5) > 1e-9 {
		t.Errorf("Lerp pitch = %v, want 5", mid.Pitch)
	}
}

func TestFramePixelRoundTrip(t *testing.T) {
	f := Frame{W: 480, H: 240}
	for _, a := range []Angle{{0, 0}, {-179, 45}, {120, -60}, {179, 89}} {
		x, y := f.ToPixel(a)
		back := f.ToAngle(x, y)
		if math.Abs(YawDelta(a.Yaw, back.Yaw)) > 1.0 || math.Abs(a.Pitch-back.Pitch) > 1.0 {
			t.Errorf("round trip %v -> (%d,%d) -> %v", a, x, y, back)
		}
	}
}

func TestFramePPD(t *testing.T) {
	f := Frame{W: 2880, H: 1440}
	if f.PPDYaw() != 8 || f.PPDPitch() != 8 {
		t.Errorf("PPD = (%v,%v), want (8,8)", f.PPDYaw(), f.PPDPitch())
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	b := Rect{X0: 5, Y0: 5, X1: 15, Y1: 15}
	if got := a.OverlapArea(b); got != 25 {
		t.Errorf("overlap = %d, want 25", got)
	}
	if a.Area() != 100 || a.W() != 10 || a.H() != 10 {
		t.Error("Rect dimension accessors wrong")
	}
	c := Rect{X0: 20, Y0: 20, X1: 30, Y1: 30}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint rects should have empty intersection")
	}
	if !a.Contains(0, 0) || a.Contains(10, 10) {
		t.Error("Contains half-open semantics violated")
	}
}

func TestViewportFootprintCentered(t *testing.T) {
	f := Frame{W: 360, H: 180}
	v := Viewport{Center: Angle{Yaw: 0, Pitch: 0}, WidthDeg: 110, HeightDeg: 90}
	rects := v.Footprint(f)
	if len(rects) != 1 {
		t.Fatalf("centered viewport rects = %d, want 1", len(rects))
	}
	r := rects[0]
	if r.W() < 108 || r.W() > 112 {
		t.Errorf("viewport width px = %d, want ~110", r.W())
	}
	if r.H() < 88 || r.H() > 92 {
		t.Errorf("viewport height px = %d, want ~90", r.H())
	}
}

func TestViewportFootprintWrapsSeam(t *testing.T) {
	f := Frame{W: 360, H: 180}
	v := Viewport{Center: Angle{Yaw: 179, Pitch: 0}, WidthDeg: 110, HeightDeg: 90}
	rects := v.Footprint(f)
	if len(rects) != 2 {
		t.Fatalf("seam viewport rects = %d, want 2", len(rects))
	}
	total := 0
	for _, r := range rects {
		total += r.W()
	}
	if total < 108 || total > 112 {
		t.Errorf("seam viewport total width = %d, want ~110", total)
	}
}

func TestViewportFootprintAreaInvariant(t *testing.T) {
	f := Frame{W: 480, H: 240}
	check := func(yaw, pitch float64) bool {
		v := DefaultViewport(Angle{Yaw: yaw, Pitch: pitch}.Norm())
		area := 0
		for _, r := range v.Footprint(f) {
			if r.X0 < 0 || r.Y0 < 0 || r.X1 > f.W || r.Y1 > f.H {
				return false
			}
			area += r.Area()
		}
		return area > 0 && area <= f.W*f.H
	}
	for _, yaw := range []float64{-180, -135, -1, 0, 1, 90, 178, 179.5} {
		for _, pitch := range []float64{-89, -45, 0, 45, 89} {
			if !check(yaw, pitch) {
				t.Errorf("footprint invariant failed at yaw=%v pitch=%v", yaw, pitch)
			}
		}
	}
}

func TestViewportContains(t *testing.T) {
	v := DefaultViewport(Angle{Yaw: 175, Pitch: 0})
	if !v.Contains(Angle{Yaw: -175, Pitch: 0}) {
		t.Error("viewport should wrap the seam")
	}
	if v.Contains(Angle{Yaw: 0, Pitch: 0}) {
		t.Error("viewport should not contain the antipode region")
	}
}

func TestSolidAngleFraction(t *testing.T) {
	full := Viewport{Center: Angle{}, WidthDeg: 360, HeightDeg: 180}
	if got := full.SolidAngleFraction(); math.Abs(got-1) > 1e-9 {
		t.Errorf("full sphere fraction = %v, want 1", got)
	}
	v := DefaultViewport(Angle{})
	got := v.SolidAngleFraction()
	if got <= 0.1 || got >= 0.35 {
		t.Errorf("110x90 viewport fraction = %v, want ~0.2", got)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
			return true
		}
	}
	return false
}
