// Package geom provides spherical and equirectangular geometry used
// throughout the Pano pipeline: viewpoint angles, great-circle distances,
// viewport footprints on the equirectangular plane, and pixel/degree
// conversions.
//
// Conventions:
//   - Yaw (longitude) is in degrees in [-180, 180), increasing eastward.
//   - Pitch (latitude) is in degrees in [-90, 90], increasing upward.
//   - An equirectangular frame of size W x H maps yaw linearly to x and
//     pitch linearly to y, with (0, 0) yaw/pitch at the frame center.
package geom

import (
	"fmt"
	"math"
)

// Degrees of the full sphere along each equirectangular axis.
const (
	FullYawDeg   = 360.0
	FullPitchDeg = 180.0
)

// Angle is a direction on the sphere, in degrees.
type Angle struct {
	Yaw   float64 // longitude, degrees, normalized to [-180, 180)
	Pitch float64 // latitude, degrees, clamped to [-90, 90]
}

// NormYaw normalizes a yaw angle in degrees to [-180, 180).
func NormYaw(yaw float64) float64 {
	y := math.Mod(yaw+180, 360)
	if y < 0 {
		y += 360
	}
	return y - 180
}

// ClampPitch clamps a pitch angle in degrees to [-90, 90].
func ClampPitch(pitch float64) float64 {
	if pitch > 90 {
		return 90
	}
	if pitch < -90 {
		return -90
	}
	return pitch
}

// Norm returns a normalized copy of a: yaw wrapped, pitch clamped.
func (a Angle) Norm() Angle {
	return Angle{Yaw: NormYaw(a.Yaw), Pitch: ClampPitch(a.Pitch)}
}

// String implements fmt.Stringer.
func (a Angle) String() string {
	return fmt.Sprintf("(yaw=%.2f°, pitch=%.2f°)", a.Yaw, a.Pitch)
}

// YawDelta returns the signed shortest yaw difference b-a in degrees,
// in [-180, 180).
func YawDelta(a, b float64) float64 {
	return NormYaw(b - a)
}

// GreatCircleDeg returns the central angle between two directions in
// degrees, computed with the haversine formula for numerical stability
// at small separations.
func GreatCircleDeg(a, b Angle) float64 {
	lat1 := a.Pitch * math.Pi / 180
	lat2 := b.Pitch * math.Pi / 180
	dLat := lat2 - lat1
	dLon := (b.Yaw - a.Yaw) * math.Pi / 180
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * math.Asin(math.Sqrt(h)) * 180 / math.Pi
}

// Vec returns the unit direction vector of the angle (x toward yaw 0,
// z toward the north pole).
func (a Angle) Vec() [3]float64 {
	yaw := a.Yaw * math.Pi / 180
	pitch := a.Pitch * math.Pi / 180
	return [3]float64{
		math.Cos(pitch) * math.Cos(yaw),
		math.Cos(pitch) * math.Sin(yaw),
		math.Sin(pitch),
	}
}

// FromVec converts a direction vector (not necessarily unit) back to an
// angle. The zero vector maps to the origin direction.
func FromVec(v [3]float64) Angle {
	n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	if n == 0 {
		return Angle{}
	}
	return Angle{
		Yaw:   NormYaw(math.Atan2(v[1], v[0]) * 180 / math.Pi),
		Pitch: ClampPitch(math.Asin(v[2]/n) * 180 / math.Pi),
	}
}

// Centroid returns the spherical centroid (normalized mean direction)
// of the given angles, or the origin direction for an empty slice.
func Centroid(angles []Angle) Angle {
	var sum [3]float64
	for _, a := range angles {
		v := a.Vec()
		sum[0] += v[0]
		sum[1] += v[1]
		sum[2] += v[2]
	}
	return FromVec(sum)
}

// Lerp interpolates between a and b along the short yaw arc. t in [0,1].
func Lerp(a, b Angle, t float64) Angle {
	return Angle{
		Yaw:   NormYaw(a.Yaw + YawDelta(a.Yaw, b.Yaw)*t),
		Pitch: ClampPitch(a.Pitch + (b.Pitch-a.Pitch)*t),
	}
}

// Frame describes an equirectangular pixel grid.
type Frame struct {
	W, H int
}

// PPDYaw returns horizontal pixels per degree at the equator.
func (f Frame) PPDYaw() float64 { return float64(f.W) / FullYawDeg }

// PPDPitch returns vertical pixels per degree.
func (f Frame) PPDPitch() float64 { return float64(f.H) / FullPitchDeg }

// ToPixel maps an angle to pixel coordinates within the frame.
// The returned coordinates are clamped to [0, W-1] x [0, H-1].
func (f Frame) ToPixel(a Angle) (x, y int) {
	a = a.Norm()
	fx := (a.Yaw + 180) / FullYawDeg * float64(f.W)
	fy := (90 - a.Pitch) / FullPitchDeg * float64(f.H)
	x = int(fx)
	y = int(fy)
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return x, y
}

// ToAngle maps pixel coordinates to the angle at the pixel center.
func (f Frame) ToAngle(x, y int) Angle {
	yaw := (float64(x)+0.5)/float64(f.W)*FullYawDeg - 180
	pitch := 90 - (float64(y)+0.5)/float64(f.H)*FullPitchDeg
	return Angle{Yaw: NormYaw(yaw), Pitch: ClampPitch(pitch)}
}

// Rect is a half-open pixel rectangle [X0,X1) x [Y0,Y1) on an
// equirectangular frame. Rectangles never wrap: a wrapping region is
// represented as two Rects (see Viewport).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width in pixels.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the rectangle height in pixels.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the rectangle area in pixels.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether the rectangle has no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Contains reports whether pixel (x, y) is inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Intersect returns the intersection of two rectangles (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		X0: max(r.X0, o.X0), Y0: max(r.Y0, o.Y0),
		X1: min(r.X1, o.X1), Y1: min(r.Y1, o.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// OverlapArea returns the overlap area in pixels between two rectangles.
func (r Rect) OverlapArea(o Rect) int { return r.Intersect(o).Area() }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Viewport describes a field of view centered at a viewpoint.
// WidthDeg/HeightDeg are the angular extents (e.g. 110 x 90 for a
// head-mounted display).
type Viewport struct {
	Center    Angle
	WidthDeg  float64
	HeightDeg float64
}

// DefaultViewport returns the ~110°x90° HMD viewport used in the paper.
func DefaultViewport(center Angle) Viewport {
	return Viewport{Center: center, WidthDeg: 110, HeightDeg: 90}
}

// Footprint returns the viewport's pixel coverage on frame f as one or two
// non-wrapping rectangles (two when the viewport crosses the ±180° seam).
func (v Viewport) Footprint(f Frame) []Rect {
	c := v.Center.Norm()
	halfW := v.WidthDeg / 2
	halfH := v.HeightDeg / 2

	top := ClampPitch(c.Pitch + halfH)
	bot := ClampPitch(c.Pitch - halfH)
	y0 := int((90 - top) / FullPitchDeg * float64(f.H))
	y1 := int(math.Ceil((90 - bot) / FullPitchDeg * float64(f.H)))
	y0 = clampInt(y0, 0, f.H)
	y1 = clampInt(y1, 0, f.H)
	if y1 <= y0 {
		return nil
	}

	left := c.Yaw - halfW
	right := c.Yaw + halfW
	if right-left >= FullYawDeg {
		return []Rect{{X0: 0, Y0: y0, X1: f.W, Y1: y1}}
	}
	x0f := (left + 180) / FullYawDeg * float64(f.W)
	x1f := (right + 180) / FullYawDeg * float64(f.W)
	x0 := int(math.Floor(x0f))
	x1 := int(math.Ceil(x1f))

	wrapMod := func(x int) int {
		m := x % f.W
		if m < 0 {
			m += f.W
		}
		return m
	}
	if x0 >= 0 && x1 <= f.W {
		return []Rect{{X0: x0, Y0: y0, X1: x1, Y1: y1}}
	}
	// Wrapping: split into [wrap(x0), W) and [0, wrap(x1)).
	a := Rect{X0: wrapMod(x0), Y0: y0, X1: f.W, Y1: y1}
	b := Rect{X0: 0, Y0: y0, X1: wrapMod(x1), Y1: y1}
	out := make([]Rect, 0, 2)
	if !a.Empty() {
		out = append(out, a)
	}
	if !b.Empty() {
		out = append(out, b)
	}
	return out
}

// Contains reports whether angle a falls within the viewport.
func (v Viewport) Contains(a Angle) bool {
	c := v.Center.Norm()
	a = a.Norm()
	dy := math.Abs(a.Pitch - c.Pitch)
	dx := math.Abs(YawDelta(c.Yaw, a.Yaw))
	return dx <= v.WidthDeg/2 && dy <= v.HeightDeg/2
}

// SolidAngleFraction approximates the fraction of the sphere covered by
// the viewport, using the spherical-cap band formula for the pitch range
// and the yaw fraction within it.
func (v Viewport) SolidAngleFraction() float64 {
	c := v.Center.Norm()
	top := ClampPitch(c.Pitch+v.HeightDeg/2) * math.Pi / 180
	bot := ClampPitch(c.Pitch-v.HeightDeg/2) * math.Pi / 180
	band := (math.Sin(top) - math.Sin(bot)) / 2 // fraction of sphere in band
	yawFrac := math.Min(v.WidthDeg/FullYawDeg, 1)
	return band * yawFrac
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
