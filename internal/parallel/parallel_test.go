package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForWorkersCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]atomic.Int64, n)
			ForWorkers(workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForUsesDefaultWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	var count atomic.Int64
	For(50, func(i int) { count.Add(1) })
	if count.Load() != 50 {
		t.Fatalf("For visited %d of 50 indices", count.Load())
	}
}

func TestSetWorkersResetTracksGOMAXPROCS(t *testing.T) {
	prev := SetWorkers(5)
	SetWorkers(0) // reset
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d after reset, want GOMAXPROCS %d", got, want)
	}
	SetWorkers(prev)
}

func TestForWorkersPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in fn did not propagate")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("recovered %v, want wrapped worker panic", r)
		}
	}()
	ForWorkers(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForBandsDeterministicBoundaries(t *testing.T) {
	// Band boundaries must depend only on (n, band), never on workers.
	type span struct{ lo, hi int }
	collect := func(workers int) []span {
		out := make([]span, NumBands(103, 10))
		ForBands(workers, 103, 10, func(b, lo, hi int) { out[b] = span{lo, hi} })
		return out
	}
	ref := collect(1)
	for _, workers := range []int{2, 8} {
		got := collect(workers)
		for b := range ref {
			if got[b] != ref[b] {
				t.Fatalf("workers=%d band %d = %+v, want %+v", workers, b, got[b], ref[b])
			}
		}
	}
	// Bands tile [0, n) exactly.
	covered := make([]int, 103)
	ForBands(4, 103, 10, func(b, lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestNumBands(t *testing.T) {
	cases := []struct{ n, band, want int }{
		{0, 10, 0}, {-3, 10, 0}, {1, 10, 1}, {10, 10, 1},
		{11, 10, 2}, {103, 10, 11}, {5, 0, 5}, {5, -1, 5},
	}
	for _, c := range cases {
		if got := NumBands(c.n, c.band); got != c.want {
			t.Errorf("NumBands(%d, %d) = %d, want %d", c.n, c.band, got, c.want)
		}
	}
}

func TestForBandsZeroAndNegativeN(t *testing.T) {
	called := false
	ForBands(4, 0, 8, func(b, lo, hi int) { called = true })
	ForBands(4, -5, 8, func(b, lo, hi int) { called = true })
	ForWorkers(4, 0, func(int) { called = true })
	ForWorkers(4, -1, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}
