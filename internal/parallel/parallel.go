// Package parallel provides the small bounded worker pool that the
// pixel-level kernels (content-JND fields, PSPNR reductions, tile
// scoring, the provider's offline table build) run on. It is
// stdlib-only and deliberately tiny: a chunked For over an index range.
//
// Determinism contract: For(n, fn) calls fn exactly once for every
// index in [0, n), in unspecified order, from at most Workers()
// goroutines. Kernels built on it stay bit-identical to their serial
// form as long as each index writes only its own output slots (or
// partial sums are reduced in index order afterwards) — the property
// the serial≡parallel tests in internal/jnd, internal/quality and
// internal/tiling pin down.
//
// The default worker count tracks GOMAXPROCS; SetWorkers overrides it
// process-wide (tests inject explicit counts per call instead, via
// ForWorkers).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide override; 0 means "track
// GOMAXPROCS".
var defaultWorkers atomic.Int64

// Workers returns the worker count For uses: the SetWorkers override
// when set, otherwise GOMAXPROCS.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the process-wide default worker count and
// returns the previous effective value. n <= 0 removes the override,
// reverting to GOMAXPROCS.
func SetWorkers(n int) int {
	prev := Workers()
	if n <= 0 {
		defaultWorkers.Store(0)
	} else {
		defaultWorkers.Store(int64(n))
	}
	return prev
}

// For runs fn(i) for every i in [0, n) on the default worker count.
func For(n int, fn func(i int)) {
	ForWorkers(Workers(), n, fn)
}

// ForWorkers runs fn(i) for every i in [0, n) on at most workers
// goroutines (the calling goroutine counts as one). workers <= 1 or
// n <= 1 degenerates to a plain serial loop. A panic in fn is
// re-raised on the calling goroutine after all workers have stopped.
func ForWorkers(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	// Chunked dynamic scheduling: workers grab grain-sized index runs
	// from a shared cursor, balancing uneven per-index cost without a
	// per-index atomic.
	grain := n / (workers * 4)
	if grain < 1 {
		grain = 1
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
		panicO sync.Once
		panicV any
	)
	body := func() {
		defer func() {
			if r := recover(); r != nil {
				panicO.Do(func() { panicV = fmt.Errorf("parallel: worker panic: %v", r) })
			}
			wg.Done()
		}()
		for {
			lo := int(cursor.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	wg.Add(workers)
	for w := 1; w < workers; w++ {
		go body()
	}
	body() // the caller participates
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// ForBands splits [0, n) into contiguous bands of the given size and
// runs fn(band, lo, hi) for each, in parallel on the given worker
// count. Band boundaries depend only on n and band — never on the
// worker count — so reductions that accumulate one partial result per
// band and combine them in band order are bit-identical for every
// worker count, including 1. band <= 0 is treated as 1.
func ForBands(workers, n, band int, fn func(band, lo, hi int)) {
	if n <= 0 {
		return
	}
	if band <= 0 {
		band = 1
	}
	nb := (n + band - 1) / band
	ForWorkers(workers, nb, func(b int) {
		lo := b * band
		hi := lo + band
		if hi > n {
			hi = n
		}
		fn(b, lo, hi)
	})
}

// NumBands returns how many bands ForBands(_, n, band, _) produces,
// so callers can size their partial-result slices.
func NumBands(n, band int) int {
	if n <= 0 {
		return 0
	}
	if band <= 0 {
		band = 1
	}
	return (n + band - 1) / band
}
