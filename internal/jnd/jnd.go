// Package jnd implements the paper's 360JND model (§4).
//
// The Just-Noticeable Difference at a pixel is the product of two parts:
//
//	JND(i,j) = C(i,j) * A(v, d, l)
//
// where C is the content-dependent JND of classic perceptual coding
// (Chou & Li 1995: luminance masking and texture masking computed from
// the original pixels), and A is the action-dependent ratio — the product
// of three multipliers driven by the user's viewpoint movement:
//
//	A(v, d, l) = Fv(v) * Fd(d) * Fl(l)
//
// with v the relative viewpoint-moving speed (deg/s), d the
// depth-of-field difference to the viewpoint-focused object (dioptre),
// and l the luminance change within the last ~5 seconds (grey levels).
// The multipliers are monotone non-decreasing, equal to 1 at zero, and
// calibrated so the 50%-extra-tolerance thresholds of §2.3 hold:
// Fv(10)=1.5, Fl(200)=1.5, Fd(0.7)=1.5.
package jnd

import (
	"fmt"
	"math"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/parallel"
)

// Factors bundles the three viewpoint-driven quantities for one tile at
// one instant.
type Factors struct {
	SpeedDegS  float64 // relative viewpoint-moving speed, deg/s
	DoFDiff    float64 // depth-of-field difference, dioptre
	LumaChange float64 // luminance change in the last 5 s, grey levels
}

// Zero reports whether all factors are zero (static viewing).
func (f Factors) Zero() bool {
	return f.SpeedDegS == 0 && f.DoFDiff == 0 && f.LumaChange == 0
}

// Profile holds the empirical multiplier curves as piecewise-linear
// anchors. It is content-agnostic: the paper builds it once from a user
// study and reuses it for every video (§8.4).
type Profile struct {
	SpeedX, SpeedY []float64
	DoFX, DoFY     []float64
	LumaX, LumaY   []float64
}

// Default returns the profile calibrated against the paper's Figure 6
// curves and the §2.3 thresholds.
func Default() *Profile {
	return &Profile{
		// JND vs relative speed rises ~4x over 0..20 deg/s (Fig. 6 left),
		// passing 1.5x at 10 deg/s.
		SpeedX: []float64{0, 5, 10, 15, 20},
		SpeedY: []float64{1.0, 1.2, 1.5, 2.4, 4.0},
		// JND vs DoF difference rises ~5x over 0..2 dioptre (Fig. 6
		// right), passing 1.5x at 0.7 dioptre.
		DoFX: []float64{0, 0.35, 0.7, 1.33, 2.0},
		DoFY: []float64{1.0, 1.2, 1.5, 2.6, 5.0},
		// JND vs 5s luminance change rises ~1.9x over 0..240 grey
		// (Fig. 6 middle), passing 1.5x at 200 grey.
		LumaX: []float64{0, 70, 140, 200, 240},
		LumaY: []float64{1.0, 1.1, 1.25, 1.5, 1.9},
	}
}

// Validate checks monotonicity and the F(0)=1 normalization.
func (p *Profile) Validate() error {
	check := func(name string, xs, ys []float64) error {
		if len(xs) != len(ys) || len(xs) < 2 {
			return fmt.Errorf("jnd: %s anchors malformed", name)
		}
		if ys[0] != 1 {
			return fmt.Errorf("jnd: %s multiplier at 0 is %v, want 1", name, ys[0])
		}
		for i := 1; i < len(xs); i++ {
			if xs[i] <= xs[i-1] {
				return fmt.Errorf("jnd: %s x anchors not increasing", name)
			}
			if ys[i] < ys[i-1] {
				return fmt.Errorf("jnd: %s multiplier not monotone", name)
			}
		}
		return nil
	}
	if err := check("speed", p.SpeedX, p.SpeedY); err != nil {
		return err
	}
	if err := check("dof", p.DoFX, p.DoFY); err != nil {
		return err
	}
	return check("luma", p.LumaX, p.LumaY)
}

// Fv returns the viewpoint-speed multiplier at v deg/s.
func (p *Profile) Fv(v float64) float64 {
	if v < 0 {
		v = -v
	}
	return mathx.Interp(v, p.SpeedX, p.SpeedY)
}

// Fd returns the DoF-difference multiplier at d dioptre.
func (p *Profile) Fd(d float64) float64 {
	if d < 0 {
		d = -d
	}
	return mathx.Interp(d, p.DoFX, p.DoFY)
}

// Fl returns the luminance-change multiplier at l grey levels.
func (p *Profile) Fl(l float64) float64 {
	if l < 0 {
		l = -l
	}
	return mathx.Interp(l, p.LumaX, p.LumaY)
}

// ActionRatio returns A(v,d,l) = Fv*Fd*Fl (Equation 4).
func (p *Profile) ActionRatio(f Factors) float64 {
	return p.Fv(f.SpeedDegS) * p.Fd(f.DoFDiff) * p.Fl(f.LumaChange)
}

// JND returns the full 360JND for a pixel whose content-dependent JND
// is c, under viewpoint factors f.
func (p *Profile) JND(c float64, f Factors) float64 {
	return c * p.ActionRatio(f)
}

// --- Content-dependent JND (Chou & Li 1995) ---

// LuminanceMasking returns the luminance-masking JND threshold for a
// background luminance bg in [0, 255]: high in the dark, minimal (~3)
// around mid-grey, rising gently for bright backgrounds.
func LuminanceMasking(bg float64) float64 {
	if bg < 0 {
		bg = 0
	}
	if bg > 255 {
		bg = 255
	}
	if bg <= 127 {
		return 17*(1-sqrt(bg/127)) + 3
	}
	return 3.0/128.0*(bg-127) + 3
}

// TextureMasking returns the texture-masking JND component for a mean
// local gradient magnitude g: busier regions hide more distortion.
func TextureMasking(g float64) float64 {
	const slope = 0.25
	return slope * g
}

// ContentJNDBlock returns the content-dependent JND C for a pixel block:
// the maximum of luminance masking (from the block's mean luminance) and
// texture masking (from its mean gradient), per Chou–Li.
func ContentJNDBlock(meanLuma, gradient float64) float64 {
	lm := LuminanceMasking(meanLuma)
	tm := TextureMasking(gradient)
	if tm > lm {
		return tm
	}
	return lm
}

// FieldBlockSize is the block granularity at which ContentField computes
// the content JND. 8 matches the Chou–Li neighborhood scale.
const FieldBlockSize = 8

// ContentField computes the content-dependent JND over rectangle r of
// the original frame, at FieldBlockSize granularity. The returned field
// has one value per pixel of r (block values replicated), laid out
// row-major with width r.W(). Block rows are computed in parallel on
// the process-default worker count; the result is bit-identical for
// every worker count because each block writes only its own pixels.
func ContentField(orig *frame.Frame, r geom.Rect) []float64 {
	return ContentFieldWorkers(orig, r, parallel.Workers())
}

// ContentFieldWorkers is ContentField with an explicit worker count
// (<= 1 runs serially). The serial≡parallel property tests inject
// counts here.
func ContentFieldWorkers(orig *frame.Frame, r geom.Rect, workers int) []float64 {
	w, h := r.W(), r.H()
	if w <= 0 || h <= 0 {
		return nil
	}
	out := make([]float64, w*h)
	blockRows := (h + FieldBlockSize - 1) / FieldBlockSize
	parallel.ForWorkers(workers, blockRows, func(br int) {
		by := br * FieldBlockSize
		for bx := 0; bx < w; bx += FieldBlockSize {
			block := geom.Rect{
				X0: r.X0 + bx, Y0: r.Y0 + by,
				X1: minInt(r.X0+bx+FieldBlockSize, r.X1),
				Y1: minInt(r.Y0+by+FieldBlockSize, r.Y1),
			}
			c := ContentJNDBlock(orig.MeanLuma(block), orig.GradientEnergy(block))
			for y := by; y < by+FieldBlockSize && y < h; y++ {
				for x := bx; x < bx+FieldBlockSize && x < w; x++ {
					out[y*w+x] = c
				}
			}
		}
	})
	return out
}

// MeanContentJND returns the average content-dependent JND over r —
// the per-tile summary the provider stores offline.
func MeanContentJND(orig *frame.Frame, r geom.Rect) float64 {
	c := ContentField(orig, r)
	if len(c) == 0 {
		return 0
	}
	var s float64
	for _, v := range c {
		s += v
	}
	return s / float64(len(c))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
