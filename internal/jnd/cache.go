package jnd

import (
	"container/list"
	"sync"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/obs"
)

// FieldKey identifies one cached content-JND field: the chunk (or
// frame) the pixels came from, plus the rectangle the field covers.
// Chunk is caller-defined content identity — e.g. "video/frame123" —
// and must change whenever the underlying pixels do, because the cache
// never inspects the frame.
type FieldKey struct {
	Chunk string
	Rect  geom.Rect
}

// FieldCache is a size-bounded, concurrency-safe LRU cache of
// content-JND fields. Repeated TilePSPNR/TilePMSE calls during
// adaptation hit the same (chunk, rect) pairs over and over — C(i,j)
// depends only on the original pixels (§4), so recomputing it per call
// is pure waste. A nil *FieldCache is valid and computes every field
// fresh (zero overhead beyond a nil check).
//
// Cached slices are shared between callers and MUST be treated as
// read-only; scale them with quality.ScaleField (which copies) rather
// than in place.
type FieldCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; values are *fieldEntry
	entries map[FieldKey]*list.Element

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	size      *obs.Gauge
}

type fieldEntry struct {
	key   FieldKey
	field []float64
}

// NewFieldCache returns a cache holding at most maxEntries fields
// (<= 0 selects a default of 1024). reg may be nil; when set, the
// cache registers hit/miss/eviction counters and an entry-count gauge:
//
//	pano_jnd_field_cache_hits_total
//	pano_jnd_field_cache_misses_total
//	pano_jnd_field_cache_evictions_total
//	pano_jnd_field_cache_entries
func NewFieldCache(maxEntries int, reg *obs.Registry) *FieldCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	c := &FieldCache{
		cap:     maxEntries,
		ll:      list.New(),
		entries: make(map[FieldKey]*list.Element),
		hits: reg.Counter("pano_jnd_field_cache_hits_total",
			"content-JND field cache hits"),
		misses: reg.Counter("pano_jnd_field_cache_misses_total",
			"content-JND field cache misses"),
		evictions: reg.Counter("pano_jnd_field_cache_evictions_total",
			"content-JND fields evicted by the LRU bound"),
		size: reg.Gauge("pano_jnd_field_cache_entries",
			"content-JND fields currently cached"),
	}
	// Without a registry the instruments come back nil (no-op); give the
	// cache private ones so Stats still reports live counts.
	if c.hits == nil {
		c.hits, c.misses, c.evictions, c.size = &obs.Counter{}, &obs.Counter{}, &obs.Counter{}, &obs.Gauge{}
	}
	return c
}

// ContentField returns the content-dependent JND field for rect r of
// orig, computing and caching it under (chunk, r) on a miss. A nil
// cache computes directly.
func (c *FieldCache) ContentField(chunk string, orig *frame.Frame, r geom.Rect) []float64 {
	if c == nil {
		return ContentField(orig, r)
	}
	key := FieldKey{Chunk: chunk, Rect: r}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		field := el.Value.(*fieldEntry).field
		c.mu.Unlock()
		c.hits.Inc()
		return field
	}
	c.mu.Unlock()

	// Compute outside the lock: fields are deterministic, so two
	// goroutines racing on the same key do redundant work at worst and
	// store identical values.
	field := ContentField(orig, r)
	c.misses.Inc()

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Lost the race; keep the incumbent so all callers share one slice.
		c.ll.MoveToFront(el)
		field = el.Value.(*fieldEntry).field
	} else {
		c.entries[key] = c.ll.PushFront(&fieldEntry{key: key, field: field})
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*fieldEntry).key)
			c.evictions.Inc()
		}
		c.size.Set(float64(c.ll.Len()))
	}
	c.mu.Unlock()
	return field
}

// Len returns the number of cached fields.
func (c *FieldCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts (0, 0 for a nil cache).
func (c *FieldCache) Stats() (hits, misses float64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Value(), c.misses.Value()
}
