package jnd

import (
	"testing"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/obs"
)

// workerCounts are the counts the serial≡parallel properties run at:
// serial, a small pool, and more workers than most CI machines have
// cores (so the chunked scheduler's remainder handling is exercised).
var workerCounts = []int{1, 2, 8}

func randomFrame(rng *mathx.RNG, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

// randomRect returns a random sub-rectangle of a w×h frame, sometimes
// degenerate (empty or a single pixel).
func randomRect(rng *mathx.RNG, w, h int) geom.Rect {
	switch rng.Intn(8) {
	case 0:
		return geom.Rect{} // empty
	case 1:
		x, y := rng.Intn(w), rng.Intn(h)
		return geom.Rect{X0: x, Y0: y, X1: x + 1, Y1: y + 1} // 1 pixel
	}
	x0, y0 := rng.Intn(w), rng.Intn(h)
	x1 := x0 + 1 + rng.Intn(w-x0)
	y1 := y0 + 1 + rng.Intn(h-y0)
	return geom.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

func TestContentFieldSerialEqualsParallel(t *testing.T) {
	rng := mathx.NewRNG(0xC0FFEE)
	for trial := 0; trial < 25; trial++ {
		w := 1 + rng.Intn(150)
		h := 1 + rng.Intn(90)
		f := randomFrame(rng, w, h)
		r := randomRect(rng, w, h)
		ref := ContentFieldWorkers(f, r, 1)
		for _, workers := range workerCounts[1:] {
			got := ContentFieldWorkers(f, r, workers)
			if len(got) != len(ref) {
				t.Fatalf("trial %d rect %v workers %d: len %d, want %d", trial, r, workers, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("trial %d rect %v workers %d: field[%d] = %v, want %v (bit-exact)",
						trial, r, workers, i, got[i], ref[i])
				}
			}
		}
		// The default entry point must agree with the explicit form.
		def := ContentField(f, r)
		for i := range ref {
			if def[i] != ref[i] {
				t.Fatalf("trial %d: ContentField diverges from ContentFieldWorkers at %d", trial, i)
			}
		}
	}
}

func TestContentFieldDegenerateRects(t *testing.T) {
	f := randomFrame(mathx.NewRNG(7), 32, 32)
	if got := ContentFieldWorkers(f, geom.Rect{}, 8); len(got) != 0 {
		t.Fatalf("empty rect: len %d, want 0", len(got))
	}
	if got := ContentFieldWorkers(f, geom.Rect{X0: 5, Y0: 5, X1: 4, Y1: 9}, 8); len(got) != 0 {
		t.Fatalf("inverted rect: len %d, want 0", len(got))
	}
	one := ContentFieldWorkers(f, geom.Rect{X0: 3, Y0: 4, X1: 4, Y1: 5}, 8)
	if len(one) != 1 {
		t.Fatalf("1-pixel rect: len %d, want 1", len(one))
	}
	want := ContentJNDBlock(f.MeanLuma(geom.Rect{X0: 3, Y0: 4, X1: 4, Y1: 5}),
		f.GradientEnergy(geom.Rect{X0: 3, Y0: 4, X1: 4, Y1: 5}))
	if one[0] != want {
		t.Fatalf("1-pixel field = %v, want %v", one[0], want)
	}
}

func TestFieldCacheHitReturnsSameSlice(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewFieldCache(4, reg)
	f := randomFrame(mathx.NewRNG(11), 40, 24)
	r := geom.Rect{X0: 8, Y0: 0, X1: 24, Y1: 16}

	first := c.ContentField("chunk0", f, r)
	second := c.ContentField("chunk0", f, r)
	if &first[0] != &second[0] {
		t.Error("cache hit returned a different slice")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%v hits, %v misses), want (1, 1)", hits, misses)
	}
	if got := reg.CounterValue("pano_jnd_field_cache_hits_total"); got != 1 {
		t.Errorf("hits counter = %v, want 1", got)
	}
	if got := reg.CounterValue("pano_jnd_field_cache_misses_total"); got != 1 {
		t.Errorf("misses counter = %v, want 1", got)
	}

	// A different chunk key or rect misses even with identical pixels.
	c.ContentField("chunk1", f, r)
	c.ContentField("chunk0", f, geom.Rect{X0: 0, Y0: 0, X1: 8, Y1: 8})
	if hits, misses := c.Stats(); hits != 1 || misses != 3 {
		t.Errorf("stats after distinct keys = (%v, %v), want (1, 3)", hits, misses)
	}

	// Matches the serial kernel bit-for-bit.
	ref := ContentFieldWorkers(f, r, 1)
	for i := range ref {
		if first[i] != ref[i] {
			t.Fatalf("cached field diverges at %d", i)
		}
	}
}

func TestFieldCacheEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewFieldCache(2, reg)
	f := randomFrame(mathx.NewRNG(13), 64, 16)
	r := func(i int) geom.Rect { return geom.Rect{X0: i * 8, X1: i*8 + 8, Y0: 0, Y1: 8} }

	c.ContentField("k", f, r(0))
	c.ContentField("k", f, r(1))
	c.ContentField("k", f, r(0)) // refresh 0 → 1 is now LRU
	c.ContentField("k", f, r(2)) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if got := reg.CounterValue("pano_jnd_field_cache_evictions_total"); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
	c.ContentField("k", f, r(0)) // still cached
	c.ContentField("k", f, r(1)) // evicted → miss
	hits, misses := c.Stats()
	if hits != 2 || misses != 4 {
		t.Errorf("stats = (%v, %v), want (2, 4)", hits, misses)
	}
	if got := reg.GaugeValue("pano_jnd_field_cache_entries"); got != 2 {
		t.Errorf("entries gauge = %v, want 2", got)
	}
}

func TestFieldCacheNilSafe(t *testing.T) {
	var c *FieldCache
	f := randomFrame(mathx.NewRNG(17), 16, 16)
	r := geom.Rect{X1: 16, Y1: 16}
	got := c.ContentField("x", f, r)
	ref := ContentFieldWorkers(f, r, 1)
	if len(got) != len(ref) {
		t.Fatalf("nil cache len %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("nil cache diverges at %d", i)
		}
	}
	if c.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("nil cache stats non-zero")
	}
}

func TestFieldCacheConcurrent(t *testing.T) {
	// Hammer one cache from many goroutines; -race validates the
	// locking, and every result must be bit-identical to the serial
	// kernel.
	c := NewFieldCache(8, nil)
	f := randomFrame(mathx.NewRNG(23), 80, 40)
	rects := []geom.Rect{
		{X1: 80, Y1: 40},
		{X0: 8, Y0: 8, X1: 40, Y1: 24},
		{X0: 72, Y0: 32, X1: 73, Y1: 33},
	}
	refs := make([][]float64, len(rects))
	for i, r := range rects {
		refs[i] = ContentFieldWorkers(f, r, 1)
	}
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(rects)
				got := c.ContentField("c", f, rects[i])
				for j := range refs[i] {
					if got[j] != refs[i][j] {
						done <- errDiverged
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errDiverged = errTest("concurrent cache result diverged from serial kernel")

type errTest string

func (e errTest) Error() string { return string(e) }
