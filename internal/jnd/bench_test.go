package jnd

import (
	"testing"

	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/parallel"
)

// Benchmark frame matches the pano-bench "parallel" experiment so `make
// bench` numbers and BENCH_parallel.json are directly comparable.
const benchW, benchH = 960, 480

func runContentFieldBench(b *testing.B, workers int) {
	f := randomFrame(mathx.NewRNG(0xBE9C), benchW, benchH)
	r := geom.Rect{X1: benchW, Y1: benchH}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ContentFieldWorkers(f, r, workers)
	}
}

func BenchmarkContentFieldSerial(b *testing.B)   { runContentFieldBench(b, 1) }
func BenchmarkContentFieldParallel(b *testing.B) { runContentFieldBench(b, parallel.Workers()) }

func BenchmarkFieldCacheHit(b *testing.B) {
	f := randomFrame(mathx.NewRNG(0xBE9C), benchW, benchH)
	r := geom.Rect{X1: benchW, Y1: benchH}
	c := NewFieldCache(4, nil)
	c.ContentField("k", f, r) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ContentField("k", f, r)
	}
}
