package jnd

import (
	"math"
	"testing"
	"testing/quick"

	"pano/internal/frame"
	"pano/internal/geom"
)

func TestDefaultProfileValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperThresholds(t *testing.T) {
	// §2.3: users tolerate 50% more distortion beyond 10 deg/s,
	// 200 grey levels, and 0.7 dioptre.
	p := Default()
	if got := p.Fv(10); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Fv(10) = %v, want 1.5", got)
	}
	if got := p.Fl(200); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Fl(200) = %v, want 1.5", got)
	}
	if got := p.Fd(0.7); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Fd(0.7) = %v, want 1.5", got)
	}
}

func TestMultipliersIdentityAtZero(t *testing.T) {
	p := Default()
	if p.Fv(0) != 1 || p.Fd(0) != 1 || p.Fl(0) != 1 {
		t.Error("multipliers must equal 1 at zero")
	}
	if got := p.ActionRatio(Factors{}); got != 1 {
		t.Errorf("A(0,0,0) = %v, want 1", got)
	}
}

func TestMultipliersMonotone(t *testing.T) {
	p := Default()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return p.Fv(a) <= p.Fv(b)+1e-12 &&
			p.Fd(a/100) <= p.Fd(b/100)+1e-12 &&
			p.Fl(a) <= p.Fl(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeInputsMirror(t *testing.T) {
	p := Default()
	if p.Fv(-10) != p.Fv(10) || p.Fd(-1) != p.Fd(1) || p.Fl(-100) != p.Fl(100) {
		t.Error("multipliers should use magnitudes")
	}
}

func TestActionRatioIsProduct(t *testing.T) {
	p := Default()
	f := Factors{SpeedDegS: 12, DoFDiff: 0.9, LumaChange: 150}
	want := p.Fv(12) * p.Fd(0.9) * p.Fl(150)
	if got := p.ActionRatio(f); math.Abs(got-want) > 1e-12 {
		t.Errorf("ActionRatio = %v, want product %v", got, want)
	}
	if got := p.JND(5, f); math.Abs(got-5*want) > 1e-12 {
		t.Errorf("JND = %v, want %v", got, 5*want)
	}
}

func TestFactorsZero(t *testing.T) {
	if !(Factors{}).Zero() {
		t.Error("zero factors should report Zero")
	}
	if (Factors{SpeedDegS: 1}).Zero() {
		t.Error("non-zero factors should not report Zero")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []*Profile{
		{SpeedX: []float64{0}, SpeedY: []float64{1}}, // too short
		{SpeedX: []float64{0, 1}, SpeedY: []float64{2, 3}, DoFX: []float64{0, 1}, DoFY: []float64{1, 2}, LumaX: []float64{0, 1}, LumaY: []float64{1, 2}},   // F(0)!=1
		{SpeedX: []float64{0, 0}, SpeedY: []float64{1, 2}, DoFX: []float64{0, 1}, DoFY: []float64{1, 2}, LumaX: []float64{0, 1}, LumaY: []float64{1, 2}},   // non-increasing x
		{SpeedX: []float64{0, 1}, SpeedY: []float64{1, 0.5}, DoFX: []float64{0, 1}, DoFY: []float64{1, 2}, LumaX: []float64{0, 1}, LumaY: []float64{1, 2}}, // non-monotone y
		{SpeedX: []float64{0, 1}, SpeedY: []float64{1, 2}, DoFX: []float64{0, 1}, DoFY: []float64{1, 2}, LumaX: []float64{0, 1}, LumaY: []float64{1, 0.9}}, // luma non-monotone
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLuminanceMaskingShape(t *testing.T) {
	// Dark backgrounds hide more noise than mid-grey; bright more than
	// mid-grey; minimum is ~3 at bg=127.
	dark := LuminanceMasking(0)
	mid := LuminanceMasking(127)
	bright := LuminanceMasking(255)
	if math.Abs(dark-20) > 1e-9 {
		t.Errorf("LM(0) = %v, want 20", dark)
	}
	if math.Abs(mid-3) > 1e-9 {
		t.Errorf("LM(127) = %v, want 3", mid)
	}
	if bright <= mid || bright >= dark {
		t.Errorf("LM(255) = %v, want between %v and %v", bright, mid, dark)
	}
	// Clamps.
	if LuminanceMasking(-5) != dark || LuminanceMasking(300) != bright {
		t.Error("LuminanceMasking should clamp input")
	}
}

func TestTextureMaskingGrows(t *testing.T) {
	if TextureMasking(0) != 0 {
		t.Error("no texture, no masking")
	}
	if TextureMasking(40) <= TextureMasking(10) {
		t.Error("texture masking should grow with gradient")
	}
}

func TestContentJNDBlockIsMax(t *testing.T) {
	// Flat mid-grey: luminance masking dominates.
	if got := ContentJNDBlock(127, 0); math.Abs(got-3) > 1e-9 {
		t.Errorf("flat mid-grey C = %v, want 3", got)
	}
	// Very busy block: texture masking dominates.
	if got := ContentJNDBlock(127, 100); got != TextureMasking(100) {
		t.Errorf("busy C = %v, want texture term", got)
	}
}

func TestContentFieldDimsAndValues(t *testing.T) {
	f := frame.New(32, 16)
	f.Fill(127)
	r := geom.Rect{X0: 4, Y0: 2, X1: 28, Y1: 14}
	field := ContentField(f, r)
	if len(field) != r.Area() {
		t.Fatalf("field len %d, want %d", len(field), r.Area())
	}
	for _, v := range field {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("flat mid-grey field value %v, want 3", v)
		}
	}
}

func TestContentFieldTexturedVsFlat(t *testing.T) {
	flat := frame.New(32, 32)
	flat.Fill(127)
	busy := frame.New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if (x+y)%2 == 0 {
				busy.Set(x, y, 80)
			} else {
				busy.Set(x, y, 180)
			}
		}
	}
	r := geom.Rect{X1: 32, Y1: 32}
	if MeanContentJND(busy, r) <= MeanContentJND(flat, r) {
		t.Error("textured content should have higher JND than flat")
	}
}

func TestMeanContentJNDEmpty(t *testing.T) {
	f := frame.New(8, 8)
	if got := MeanContentJND(f, geom.Rect{}); got != 0 {
		t.Errorf("empty rect mean JND = %v, want 0", got)
	}
}
