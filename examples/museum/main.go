// Museum: the Figure 2(c) scenario — depth-of-field differences mask
// distortion.
//
// In scenes mixing near foreground objects with distant vistas, the
// user focuses at one depth plane at a time. Content at a very
// different depth (measured in dioptres of accommodation) tolerates far
// more distortion. This example inspects the depth structure of a
// tourism scene, shows the DoF multiplier in action as the viewer
// refocuses between exhibits and vistas, and measures the end-to-end
// bandwidth/quality effect.
//
// Run with: go run ./examples/museum
package main

import (
	"fmt"
	"log"
	"math"

	"pano"
)

func main() {
	opts := pano.VideoOptions{W: 240, H: 120, FPS: 10, DurationSec: 10}
	// Tourism scenes alternate near foreground objects with far vistas.
	video := pano.GenerateVideo(pano.Tourism, 8, opts)
	fmt.Println("scene depth planes (dioptre; 0 = optical infinity):")
	for _, o := range video.Objects {
		fmt.Printf("  object %d: depth %.2f D, size %.0f°, speed %.1f deg/s\n",
			o.ID, o.Depth, o.SizeDeg, o.SpeedDegS())
	}

	// How much extra distortion does a 2-dioptre refocus tolerate?
	prof := pano.DefaultJND()
	fmt.Println("\nDoF difference -> JND multiplier:")
	for _, d := range []float64{0, 0.35, 0.7, 1.33, 2.0} {
		fmt.Printf("  %.2f D: Fd = %.2f (+%.0f%% tolerable distortion)\n",
			d, prof.Fd(d), (prof.Fd(d)-1)*100)
	}

	// Track the focus depth along a real trajectory.
	viewer := pano.SynthesizeTrace(video, 13)
	fmt.Println("\nviewer focus depth over time:")
	prev := -1.0
	for ts := 0.5; ts < 9.5; ts += 1.5 {
		focus := video.DepthAt(viewer.At(ts), ts)
		shift := ""
		if prev >= 0 && math.Abs(focus-prev) > 0.5 {
			shift = "  <- refocus: far-plane tiles now tolerate more distortion"
		}
		fmt.Printf("  t=%4.1fs focus %.2f D%s\n", ts, focus, shift)
		prev = focus
	}

	history := []*pano.ViewTrace{pano.SynthesizeTrace(video, 1)}
	m, err := pano.Preprocess(video, history, pano.DefaultPreprocess())
	if err != nil {
		log.Fatal(err)
	}
	link := pano.ScaledLink(m, 0.45, 4)
	fmt.Println()
	for _, planner := range []pano.Planner{pano.NewPanoPlanner(), pano.NewViewportPlanner()} {
		res, err := pano.Simulate(m, viewer, link, planner, pano.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s PSPNR %.1f dB (MOS %d) at %.3f Mbps, buffering %.2f%%\n",
			planner.Name()+":", res.MeanPSPNR, res.MOS(), res.BandwidthMbps, res.BufferingRatio)
	}
}
