// Quickstart: the smallest end-to-end Pano pipeline.
//
//  1. Generate a synthetic 360° video.
//  2. Preprocess it: variable-size tiling + the PSPNR lookup table.
//  3. Simulate adaptive streaming over an LTE-like link with Pano's
//     perception-aware quality planner, and compare against the
//     viewport-driven baseline on the identical link.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pano"
)

func main() {
	opts := pano.VideoOptions{W: 240, H: 120, FPS: 10, DurationSec: 8}
	video := pano.GenerateVideo(pano.Sports, 42, opts)
	fmt.Printf("video: %s (%s), %d objects, %d frames\n",
		video.Name, video.Genre, len(video.Objects), video.Frames())

	// A history viewpoint trace drives offline tiling (§5).
	history := pano.SynthesizeTrace(video, 7)
	m, err := pano.Preprocess(video, []*pano.ViewTrace{history}, pano.DefaultPreprocess())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manifest: %d chunks x %d variable-size tiles, 5 quality levels\n",
		m.NumChunks(), len(m.Chunks[0].Tiles))

	// A different user watches over a constrained cellular link.
	user := pano.SynthesizeTrace(video, 99)
	link := pano.ScaledLink(m, 0.45, 3) // the paper's trace-1 operating point

	for _, planner := range []pano.Planner{pano.NewPanoPlanner(), pano.NewViewportPlanner()} {
		res, err := pano.Simulate(m, user, link, planner, pano.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s perceived quality %.1f dB PSPNR (MOS %d), buffering %.2f%%, %.3f Mbps\n",
			planner.Name()+":", res.MeanPSPNR, res.MOS(), res.BufferingRatio, res.BandwidthMbps)
	}
}
