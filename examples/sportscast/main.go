// Sportscast: the Figure 2(a) scenario — fast-moving objects tracked by
// the viewpoint.
//
// When a user tracks a skier, the skier appears static to the eye (so
// its quality matters) while the background sweeps past (so its
// distortion is masked by motion). This example shows how Pano's
// allocator exploits that: it streams the tracked-object tiles at a
// higher quality level than the background, and the end-to-end HTTP
// session consumes less bandwidth than the baseline at higher perceived
// quality.
//
// Run with: go run ./examples/sportscast
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"pano"
	"pano/internal/codec"
)

func main() {
	opts := pano.VideoOptions{W: 240, H: 120, FPS: 10, DurationSec: 8}
	video := pano.GenerateVideo(pano.Sports, 11, opts)
	fmt.Printf("sports scene: %d moving objects, fastest %.1f deg/s\n",
		len(video.Objects), video.MaxObjectSpeed())

	history := []*pano.ViewTrace{pano.SynthesizeTrace(video, 1), pano.SynthesizeTrace(video, 2)}
	m, err := pano.Preprocess(video, history, pano.DefaultPreprocess())
	if err != nil {
		log.Fatal(err)
	}

	// Serve over real HTTP (loopback) and stream with both planners.
	srv, err := pano.NewServer(m)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	viewer := pano.SynthesizeTrace(video, 33)
	// Loopback HTTP is effectively unbounded; cap the controller's rate
	// estimate at a cellular-like share of the top encoding rate so the
	// allocation story is visible.
	var topRate float64
	for k := 0; k < m.NumChunks(); k++ {
		topRate += m.ChunkBits(k, 0)
	}
	topRate /= m.DurationSec()
	for _, planner := range []pano.Planner{pano.NewPanoPlanner(), pano.NewViewportPlanner()} {
		cl := pano.NewClient(ts.URL)
		res, err := cl.Stream(context.Background(), viewer, pano.StreamConfig{
			Planner:    planner,
			MaxRateBps: 0.3 * topRate,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s streamed %d chunks, %.0f KB total, startup %v\n",
			planner.Name(), len(res.Chunks), float64(res.TotalBytes)/1024, res.StartupDelay.Round(1000))

		// Show the level spread of a mid-session chunk: Pano
		// concentrates quality, the baseline spreads it by distance.
		ch := res.Chunks[len(res.Chunks)/2]
		hist := map[codec.Level]int{}
		for _, l := range ch.Levels {
			hist[l]++
		}
		fmt.Printf("  chunk %d level histogram:", ch.Chunk)
		for l := 0; l < codec.NumLevels; l++ {
			if n := hist[codec.Level(l)]; n > 0 {
				fmt.Printf(" L%d(QP%d)x%d", l, codec.Level(l).QP(), n)
			}
		}
		fmt.Println()
	}
}
