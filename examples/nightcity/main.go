// Nightcity: the Figure 2(b) scenario — luminance changes mask
// distortion.
//
// In urban night scenes, the viewpoint swings between bright signage
// and dark streets. For ~5 seconds after such a swing, the eye is far
// less sensitive to quality distortion (luminance adaptation), so Pano
// can quietly drop quality levels without the user noticing. This
// example measures the luminance swings a real trajectory experiences,
// shows how the 360JND luminance multiplier scales the tolerable
// distortion, and quantifies the resulting bandwidth difference.
//
// Run with: go run ./examples/nightcity
package main

import (
	"fmt"
	"log"

	"pano"
)

func main() {
	opts := pano.VideoOptions{W: 240, H: 120, FPS: 10, DurationSec: 10}
	// Performance scenes carry the strongest lighting dynamics (stage
	// lighting / night-city flicker profile).
	video := pano.GenerateVideo(pano.Performance, 5, opts)
	viewer := pano.SynthesizeTrace(video, 21)

	// 1. What luminance swings does this user experience?
	prof := pano.DefaultJND()
	fmt.Println("t(s)  5s-luma-swing  Fl(swing)  tolerable distortion vs static")
	var maxSwing float64
	for ts := 1.0; ts < 9.5; ts += 2 {
		swing := viewer.MaxLumaChange(ts, 5, video.LumaAt)
		if swing > maxSwing {
			maxSwing = swing
		}
		fl := prof.Fl(swing)
		fmt.Printf("%4.1f  %13.0f  %9.2f  +%.0f%%\n", ts, swing, fl, (fl-1)*100)
	}
	fmt.Printf("max swing observed: %.0f grey levels\n\n", maxSwing)

	// 2. End-to-end effect: with the same perceived quality target, the
	// luminance-aware planner needs less bandwidth.
	history := []*pano.ViewTrace{pano.SynthesizeTrace(video, 1)}
	m, err := pano.Preprocess(video, history, pano.DefaultPreprocess())
	if err != nil {
		log.Fatal(err)
	}
	link := pano.ScaledLink(m, 0.45, 9)
	for _, planner := range []pano.Planner{pano.NewPanoPlanner(), pano.NewViewportPlanner()} {
		res, err := pano.Simulate(m, viewer, link, planner, pano.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s PSPNR %.1f dB (MOS %d) at %.3f Mbps, buffering %.2f%%\n",
			planner.Name()+":", res.MeanPSPNR, res.MOS(), res.BandwidthMbps, res.BufferingRatio)
	}
}
