module pano

go 1.22
